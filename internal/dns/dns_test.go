package dns

import (
	"net/netip"
	"testing"
	"time"

	"repro/internal/dnswire"
)

func q(name string, qtype uint16) dnswire.Question {
	return dnswire.Question{Name: name, Type: qtype, Class: dnswire.ClassIN}
}

func mustResolve(t *testing.T, r Resolver, question dnswire.Question) *dnswire.Message {
	t.Helper()
	m, err := r.Resolve(question)
	if err != nil {
		t.Fatalf("Resolve(%v): %v", question, err)
	}
	return m
}

func testZone(t *testing.T) *Zone {
	t.Helper()
	z := NewZone("rfc8925.com")
	if err := z.AddA("www", netip.MustParseAddr("192.168.12.80"), 60); err != nil {
		t.Fatal(err)
	}
	if err := z.AddAAAA("www", netip.MustParseAddr("fd00:976a::80"), 60); err != nil {
		t.Fatal(err)
	}
	if err := z.AddCNAME("alias", "www.rfc8925.com"); err != nil {
		t.Fatal(err)
	}
	if err := z.AddA("v4only", netip.MustParseAddr("192.168.12.81"), 60); err != nil {
		t.Fatal(err)
	}
	if err := z.Add(dnswire.RR{Name: "*", Type: dnswire.TypeA, Addr: netip.MustParseAddr("192.168.12.99")}); err != nil {
		t.Fatal(err)
	}
	return z
}

func TestZoneExactMatch(t *testing.T) {
	z := testZone(t)
	resp := mustResolve(t, z, q("www.rfc8925.com", dnswire.TypeA))
	if resp.Rcode != dnswire.RcodeSuccess || len(resp.Answers) != 1 {
		t.Fatalf("resp = %+v", resp)
	}
	if resp.Answers[0].Addr != netip.MustParseAddr("192.168.12.80") {
		t.Errorf("A = %v", resp.Answers[0].Addr)
	}
	if !resp.Authoritative {
		t.Error("zone answer should be authoritative")
	}
}

func TestZoneNODATAvsNXDOMAIN(t *testing.T) {
	z := testZone(t)
	// v4only has an A but no AAAA: NODATA (NOERROR, zero answers).
	resp := mustResolve(t, z, q("v4only.rfc8925.com", dnswire.TypeAAAA))
	if resp.Rcode != dnswire.RcodeSuccess || len(resp.Answers) != 0 {
		t.Errorf("want NODATA, got rcode=%s answers=%d", dnswire.RcodeString(resp.Rcode), len(resp.Answers))
	}
	if len(resp.Authorities) == 0 || resp.Authorities[0].Type != dnswire.TypeSOA {
		t.Error("NODATA should carry SOA in authority")
	}
}

func TestZoneWildcard(t *testing.T) {
	z := testZone(t)
	resp := mustResolve(t, z, q("anything.rfc8925.com", dnswire.TypeA))
	if len(resp.Answers) != 1 || resp.Answers[0].Addr != netip.MustParseAddr("192.168.12.99") {
		t.Fatalf("wildcard answer = %+v", resp.Answers)
	}
	if resp.Answers[0].Name != "anything.rfc8925.com." {
		t.Errorf("wildcard owner name = %q, want the query name", resp.Answers[0].Name)
	}
	// Wildcard does not apply to AAAA (no wildcard AAAA record): NODATA.
	resp = mustResolve(t, z, q("anything.rfc8925.com", dnswire.TypeAAAA))
	if resp.Rcode != dnswire.RcodeSuccess || len(resp.Answers) != 0 {
		t.Errorf("wildcard AAAA: rcode=%s answers=%d", dnswire.RcodeString(resp.Rcode), len(resp.Answers))
	}
}

func TestZoneEmptyNonTerminal(t *testing.T) {
	z := NewZone("example.com")
	if err := z.AddA("a.b.c", netip.MustParseAddr("10.0.0.1"), 60); err != nil {
		t.Fatal(err)
	}
	// b.c.example.com has no records but has a child: NODATA, not NXDOMAIN.
	resp := mustResolve(t, z, q("b.c.example.com", dnswire.TypeA))
	if resp.Rcode != dnswire.RcodeSuccess {
		t.Errorf("empty non-terminal: rcode = %s, want NOERROR", dnswire.RcodeString(resp.Rcode))
	}
}

func TestZoneCNAMEChase(t *testing.T) {
	z := testZone(t)
	resp := mustResolve(t, z, q("alias.rfc8925.com", dnswire.TypeAAAA))
	if len(resp.Answers) != 2 {
		t.Fatalf("answers = %+v", resp.Answers)
	}
	if resp.Answers[0].Type != dnswire.TypeCNAME || resp.Answers[1].Type != dnswire.TypeAAAA {
		t.Errorf("answer order: %v then %v", resp.Answers[0].Type, resp.Answers[1].Type)
	}
	if resp.Answers[1].Addr != netip.MustParseAddr("fd00:976a::80") {
		t.Errorf("chased AAAA = %v", resp.Answers[1].Addr)
	}
}

func TestZoneCNAMEQueryReturnsCNAMEOnly(t *testing.T) {
	z := testZone(t)
	resp := mustResolve(t, z, q("alias.rfc8925.com", dnswire.TypeCNAME))
	if len(resp.Answers) != 1 || resp.Answers[0].Type != dnswire.TypeCNAME {
		t.Fatalf("CNAME query answers = %+v", resp.Answers)
	}
}

func TestZoneCNAMELoopDetected(t *testing.T) {
	z := NewZone("loop.test")
	if err := z.AddCNAME("a", "b.loop.test"); err != nil {
		t.Fatal(err)
	}
	if err := z.AddCNAME("b", "a.loop.test"); err != nil {
		t.Fatal(err)
	}
	if _, err := z.Resolve(q("a.loop.test", dnswire.TypeA)); err == nil {
		t.Error("CNAME loop resolved without error")
	}
}

func TestZoneNXDOMAINCarriesSOA(t *testing.T) {
	z := testZone(t)
	// The zone has a wildcard, so use a name the wildcard won't cover:
	// wildcards require at least one label to the left of the suffix.
	resp := mustResolve(t, z, q("rfc8925.com", dnswire.TypePTR))
	_ = resp // origin exists; use a different zone for real NXDOMAIN
	z2 := NewZone("nowild.test")
	if err := z2.AddA("www", netip.MustParseAddr("10.0.0.1"), 60); err != nil {
		t.Fatal(err)
	}
	resp = mustResolve(t, z2, q("missing.nowild.test", dnswire.TypeA))
	if resp.Rcode != dnswire.RcodeNXDomain {
		t.Fatalf("rcode = %s, want NXDOMAIN", dnswire.RcodeString(resp.Rcode))
	}
	if len(resp.Authorities) != 1 || resp.Authorities[0].SOA == nil {
		t.Error("NXDOMAIN must carry the zone SOA")
	}
}

func TestZoneRejectsOutOfZoneRecord(t *testing.T) {
	z := NewZone("rfc8925.com")
	if err := z.AddA("www.elsewhere.org.", netip.MustParseAddr("10.0.0.1"), 60); err == nil {
		t.Error("out-of-zone record accepted")
	}
}

func TestZoneRelativeAndAbsoluteNames(t *testing.T) {
	z := NewZone("rfc8925.com")
	if err := z.AddA("@", netip.MustParseAddr("10.0.0.1"), 60); err != nil {
		t.Fatal(err)
	}
	if err := z.AddA("deep.sub.rfc8925.com.", netip.MustParseAddr("10.0.0.2"), 60); err != nil {
		t.Fatal(err)
	}
	resp := mustResolve(t, z, q("rfc8925.com", dnswire.TypeA))
	if len(resp.Answers) != 1 {
		t.Errorf("@ record not resolvable: %+v", resp)
	}
	resp = mustResolve(t, z, q("deep.sub.rfc8925.com", dnswire.TypeA))
	if len(resp.Answers) != 1 {
		t.Errorf("absolute record not resolvable: %+v", resp)
	}
}

func TestAuthorityLongestMatch(t *testing.T) {
	parent := NewZone("example.com")
	if err := parent.AddA("www", netip.MustParseAddr("10.0.0.1"), 60); err != nil {
		t.Fatal(err)
	}
	child := NewZone("sub.example.com")
	if err := child.AddA("www", netip.MustParseAddr("10.0.0.2"), 60); err != nil {
		t.Fatal(err)
	}
	a := NewAuthority(parent, child)
	resp := mustResolve(t, a, q("www.sub.example.com", dnswire.TypeA))
	if len(resp.Answers) != 1 || resp.Answers[0].Addr != netip.MustParseAddr("10.0.0.2") {
		t.Errorf("child zone not preferred: %+v", resp.Answers)
	}
	resp = mustResolve(t, a, q("other.test", dnswire.TypeA))
	if resp.Rcode != dnswire.RcodeRefused {
		t.Errorf("out-of-zone rcode = %s, want REFUSED", dnswire.RcodeString(resp.Rcode))
	}
}

func TestRecursiveLocalThenFallback(t *testing.T) {
	local := NewZone("rfc8925.com")
	if err := local.AddA("www", netip.MustParseAddr("192.168.12.80"), 60); err != nil {
		t.Fatal(err)
	}
	upstream := NewStatic(dnswire.RR{Name: "ip6.me", Type: dnswire.TypeA, TTL: 60, Addr: netip.MustParseAddr("23.153.8.71")})
	r := &Recursive{Local: NewAuthority(local), Fallback: upstream}

	resp := mustResolve(t, r, q("www.rfc8925.com", dnswire.TypeA))
	if len(resp.Answers) != 1 || resp.Answers[0].Addr != netip.MustParseAddr("192.168.12.80") {
		t.Errorf("local answer = %+v", resp.Answers)
	}
	resp = mustResolve(t, r, q("ip6.me", dnswire.TypeA))
	if len(resp.Answers) != 1 || resp.Answers[0].Addr != netip.MustParseAddr("23.153.8.71") {
		t.Errorf("fallback answer = %+v", resp.Answers)
	}
}

func TestStaticNXDOMAINAndNODATA(t *testing.T) {
	s := NewStatic(dnswire.RR{Name: "x.test", Type: dnswire.TypeA, TTL: 1, Addr: netip.MustParseAddr("1.2.3.4")})
	resp := mustResolve(t, s, q("y.test", dnswire.TypeA))
	if resp.Rcode != dnswire.RcodeNXDomain {
		t.Error("missing name should be NXDOMAIN")
	}
	resp = mustResolve(t, s, q("x.test", dnswire.TypeAAAA))
	if resp.Rcode != dnswire.RcodeSuccess || len(resp.Answers) != 0 {
		t.Error("existing name, missing type should be NODATA")
	}
}

func TestRespondGlue(t *testing.T) {
	s := NewStatic(dnswire.RR{Name: "x.test", Type: dnswire.TypeA, TTL: 1, Addr: netip.MustParseAddr("1.2.3.4")})
	req := dnswire.NewQuery(42, "x.test", dnswire.TypeA)
	resp := Respond(s, req)
	if resp.ID != 42 || !resp.Response || len(resp.Answers) != 1 {
		t.Errorf("Respond = %+v", resp)
	}

	// No questions -> FORMERR.
	resp = Respond(s, &dnswire.Message{ID: 1})
	if resp.Rcode != dnswire.RcodeFormErr {
		t.Errorf("empty question rcode = %s", dnswire.RcodeString(resp.Rcode))
	}

	// Resolver error -> SERVFAIL.
	bad := ResolverFunc(func(dnswire.Question) (*dnswire.Message, error) {
		return nil, ErrNoUpstream
	})
	resp = Respond(bad, req)
	if resp.Rcode != dnswire.RcodeServFail {
		t.Errorf("error rcode = %s", dnswire.RcodeString(resp.Rcode))
	}
}

func TestForwarderNoUpstream(t *testing.T) {
	f := &Forwarder{}
	if _, err := f.Resolve(q("x.test", dnswire.TypeA)); err == nil {
		t.Error("forwarder without upstream should error")
	}
}

func TestQueryLogCounts(t *testing.T) {
	s := NewStatic(dnswire.RR{Name: "x.test", Type: dnswire.TypeA, TTL: 1, Addr: netip.MustParseAddr("1.2.3.4")})
	l := &QueryLog{Inner: s}
	mustResolve(t, l, q("x.test", dnswire.TypeA))
	mustResolve(t, l, q("x.test", dnswire.TypeAAAA))
	mustResolve(t, l, q("x.test", dnswire.TypeA))
	if l.Count(dnswire.TypeA) != 2 || l.Count(dnswire.TypeAAAA) != 1 {
		t.Errorf("counts A=%d AAAA=%d", l.Count(dnswire.TypeA), l.Count(dnswire.TypeAAAA))
	}
}

func TestCacheHitAndExpiry(t *testing.T) {
	now := time.Date(2024, 11, 17, 9, 0, 0, 0, time.UTC)
	clock := func() time.Time { return now }

	calls := 0
	inner := ResolverFunc(func(qq dnswire.Question) (*dnswire.Message, error) {
		calls++
		resp := NoError()
		resp.Answers = []dnswire.RR{{Name: qq.Name, Type: dnswire.TypeA, TTL: 30, Addr: netip.MustParseAddr("9.9.9.9")}}
		return resp, nil
	})
	c := NewCache(inner, clock)

	mustResolve(t, c, q("cached.test", dnswire.TypeA))
	mustResolve(t, c, q("cached.test", dnswire.TypeA))
	if calls != 1 {
		t.Fatalf("inner calls = %d, want 1 (second should hit cache)", calls)
	}
	if c.Hits != 1 || c.Misses != 1 {
		t.Errorf("hits/misses = %d/%d", c.Hits, c.Misses)
	}

	now = now.Add(31 * time.Second) // past the 30s TTL
	mustResolve(t, c, q("cached.test", dnswire.TypeA))
	if calls != 2 {
		t.Errorf("inner calls = %d after TTL expiry, want 2", calls)
	}
}

func TestCacheNegativeTTLUsesSOAMinimum(t *testing.T) {
	now := time.Date(2024, 11, 17, 9, 0, 0, 0, time.UTC)
	clock := func() time.Time { return now }
	calls := 0
	inner := ResolverFunc(func(qq dnswire.Question) (*dnswire.Message, error) {
		calls++
		resp := NXDomain()
		resp.Authorities = []dnswire.RR{{
			Name: "test.", Type: dnswire.TypeSOA, TTL: 5,
			SOA: &dnswire.SOAData{Minimum: 5},
		}}
		return resp, nil
	})
	c := NewCache(inner, clock)
	mustResolve(t, c, q("gone.test", dnswire.TypeA))
	mustResolve(t, c, q("gone.test", dnswire.TypeA))
	if calls != 1 {
		t.Fatalf("negative answer not cached: calls = %d", calls)
	}
	now = now.Add(6 * time.Second)
	mustResolve(t, c, q("gone.test", dnswire.TypeA))
	if calls != 2 {
		t.Errorf("negative cache did not honor SOA minimum: calls = %d", calls)
	}
}

func TestCacheDistinguishesQtype(t *testing.T) {
	now := time.Date(2024, 11, 17, 9, 0, 0, 0, time.UTC)
	calls := 0
	inner := ResolverFunc(func(qq dnswire.Question) (*dnswire.Message, error) {
		calls++
		resp := NoError()
		if qq.Type == dnswire.TypeA {
			resp.Answers = []dnswire.RR{{Name: qq.Name, Type: dnswire.TypeA, TTL: 300, Addr: netip.MustParseAddr("1.1.1.1")}}
		} else {
			resp.Answers = []dnswire.RR{{Name: qq.Name, Type: dnswire.TypeAAAA, TTL: 300, Addr: netip.MustParseAddr("2606:4700::1")}}
		}
		return resp, nil
	})
	c := NewCache(inner, func() time.Time { return now })
	mustResolve(t, c, q("both.test", dnswire.TypeA))
	respAAAA := mustResolve(t, c, q("both.test", dnswire.TypeAAAA))
	if calls != 2 {
		t.Errorf("A and AAAA must cache separately: calls = %d", calls)
	}
	if respAAAA.Answers[0].Type != dnswire.TypeAAAA {
		t.Error("AAAA lookup returned cached A entry")
	}
	if c.Len() != 2 {
		t.Errorf("cache entries = %d, want 2", c.Len())
	}
	c.Flush()
	if c.Len() != 0 {
		t.Error("flush did not clear cache")
	}
}
