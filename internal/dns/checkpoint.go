package dns

import (
	"time"

	"repro/internal/dnswire"
)

// CacheCheckpoint is an opaque copy of a Cache's dynamic state (the
// entry set in exact LRU order plus the lookup counters), captured with
// Cache.Checkpoint and restored with Cache.Restore for testbed world
// reuse. Cached messages are shared, not cloned: the cache treats them
// as immutable.
type CacheCheckpoint struct {
	entries []cacheEntrySnap // MRU → LRU order
	hits    uint64
	misses  uint64
	evicts  uint64
	expired uint64
}

type cacheEntrySnap struct {
	key     cacheKey
	msg     *dnswire.Message
	expires time.Time
}

// Checkpoint copies the cache's entry set (preserving LRU order) and
// counters.
func (c *Cache) Checkpoint() *CacheCheckpoint {
	cp := &CacheCheckpoint{
		hits:    c.Hits,
		misses:  c.Misses,
		evicts:  c.Evictions,
		expired: c.Expired,
	}
	for e := c.head; e != nil; e = e.next {
		cp.entries = append(cp.entries, cacheEntrySnap{key: e.key, msg: e.msg, expires: e.expires})
	}
	return cp
}

// Restore rewinds the cache to a previously captured Checkpoint,
// rebuilding the entry map and the intrusive LRU list in the recorded
// order.
func (c *Cache) Restore(cp *CacheCheckpoint) {
	c.entries = make(map[cacheKey]*cacheEntry, len(cp.entries))
	c.head, c.tail = nil, nil
	var prev *cacheEntry
	for _, s := range cp.entries {
		e := &cacheEntry{key: s.key, msg: s.msg, expires: s.expires}
		c.entries[s.key] = e
		if prev == nil {
			c.head = e
		} else {
			prev.next = e
			e.prev = prev
		}
		prev = e
	}
	c.tail = prev

	c.Hits = cp.hits
	c.Misses = cp.misses
	c.Evictions = cp.evicts
	c.Expired = cp.expired
}
