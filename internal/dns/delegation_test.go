package dns

import (
	"net/netip"
	"testing"

	"repro/internal/dnswire"
)

func delegatedFixture() *Delegated {
	inner := NewStatic(
		dnswire.RR{Name: "www.example.com", Type: dnswire.TypeAAAA, Class: dnswire.ClassIN, TTL: 60, Addr: netip.MustParseAddr("2001:db8::1")},
		dnswire.RR{Name: "other.org", Type: dnswire.TypeA, Class: dnswire.ClassIN, TTL: 60, Addr: netip.MustParseAddr("192.0.2.1")},
	)
	return NewDelegated(inner)
}

func TestDelegatedHealthyZonePassesThrough(t *testing.T) {
	d := delegatedFixture()
	d.V6OnlyTransport = true
	d.Delegate("example.com", NSProfile{Name: "ns.example.net", HasAAAA: true, HasGlue: false})

	resp, err := d.Resolve(dnswire.Question{Name: "www.example.com", Type: dnswire.TypeAAAA, Class: dnswire.ClassIN})
	if err != nil || resp.Rcode != dnswire.RcodeSuccess || len(resp.Answers) != 1 {
		t.Fatalf("healthy delegation: resp=%+v err=%v", resp, err)
	}
	if d.Broken != 0 {
		t.Errorf("Broken = %d, want 0", d.Broken)
	}
}

func TestDelegatedNoAAAAOnV6OnlyTransport(t *testing.T) {
	d := delegatedFixture()
	d.V6OnlyTransport = true
	d.Delegate("example.com", NSProfile{Name: "ns.example.net", HasAAAA: false, HasGlue: true})

	for _, q := range []dnswire.Question{
		{Name: "www.example.com", Type: dnswire.TypeAAAA, Class: dnswire.ClassIN},
		{Name: "www.example.com", Type: dnswire.TypeA, Class: dnswire.ClassIN},
		{Name: "example.com", Type: dnswire.TypeAAAA, Class: dnswire.ClassIN},
	} {
		resp, err := d.Resolve(q)
		if err != nil || resp.Rcode != dnswire.RcodeServFail {
			t.Errorf("%v: resp=%+v err=%v, want SERVFAIL", q, resp, err)
		}
	}
	if d.Broken != 3 {
		t.Errorf("Broken = %d, want 3", d.Broken)
	}

	// A dual-stack recursor can still reach the v4-only nameserver.
	d.V6OnlyTransport = false
	if resp, err := d.Resolve(dnswire.Question{Name: "www.example.com", Type: dnswire.TypeAAAA, Class: dnswire.ClassIN}); err != nil || resp.Rcode != dnswire.RcodeSuccess {
		t.Errorf("dual-stack transport: resp=%+v err=%v, want success", resp, err)
	}
}

func TestDelegatedInBailiwickWithoutGlue(t *testing.T) {
	d := delegatedFixture()
	// ns.example.com lives under the zone it serves: without glue the
	// delegation is circular regardless of transport.
	d.Delegate("example.com", NSProfile{Name: "ns.example.com", HasAAAA: true, HasGlue: false})

	resp, err := d.Resolve(dnswire.Question{Name: "www.example.com", Type: dnswire.TypeAAAA, Class: dnswire.ClassIN})
	if err != nil || resp.Rcode != dnswire.RcodeServFail {
		t.Fatalf("glueless in-bailiwick: resp=%+v err=%v, want SERVFAIL", resp, err)
	}

	// With glue the same delegation works.
	d.Delegate("example.com", NSProfile{Name: "ns.example.com", HasAAAA: true, HasGlue: true})
	if resp, err := d.Resolve(dnswire.Question{Name: "www.example.com", Type: dnswire.TypeAAAA, Class: dnswire.ClassIN}); err != nil || resp.Rcode != dnswire.RcodeSuccess {
		t.Errorf("glued delegation: resp=%+v err=%v, want success", resp, err)
	}
}

func TestDelegatedOtherZonesUnaffected(t *testing.T) {
	d := delegatedFixture()
	d.V6OnlyTransport = true
	d.Delegate("example.com", NSProfile{Name: "ns6.example.com", HasAAAA: false, HasGlue: false})

	resp, err := d.Resolve(dnswire.Question{Name: "other.org", Type: dnswire.TypeA, Class: dnswire.ClassIN})
	if err != nil || resp.Rcode != dnswire.RcodeSuccess || len(resp.Answers) != 1 {
		t.Fatalf("unrelated zone: resp=%+v err=%v", resp, err)
	}
	// A name that merely shares a suffix string is not under the zone.
	if resp, _ := d.Resolve(dnswire.Question{Name: "notexample.com", Type: dnswire.TypeA, Class: dnswire.ClassIN}); resp.Rcode == dnswire.RcodeServFail {
		t.Error("suffix-string sibling notexample.com treated as under example.com")
	}
}
