package dns

import (
	"net/netip"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/dnswire"
)

// Property: zone resolution is total — arbitrary query names never
// panic and always yield a well-formed response or an explicit error.
func TestZoneResolveTotal(t *testing.T) {
	z := NewZone("example.com")
	z.MustAdd(dnswire.RR{Name: "www", Type: dnswire.TypeA, TTL: 60, Addr: netip.MustParseAddr("192.0.2.1")})
	z.MustAdd(dnswire.RR{Name: "*", Type: dnswire.TypeAAAA, TTL: 60, Addr: netip.MustParseAddr("2001:db8::1")})
	z.MustAdd(dnswire.RR{Name: "alias", Type: dnswire.TypeCNAME, Target: "www.example.com"})

	prop := func(rawName []byte, qtype uint16) (ok bool) {
		defer func() {
			if r := recover(); r != nil {
				ok = false
			}
		}()
		name := strings.Map(func(r rune) rune {
			if r >= 'a' && r <= 'z' || r == '.' || r == '-' || r >= '0' && r <= '9' {
				return r
			}
			return 'x'
		}, string(rawName))
		resp, err := z.Resolve(dnswire.Question{Name: name + ".example.com", Type: qtype, Class: dnswire.ClassIN})
		if err != nil {
			return true // explicit error (e.g. CNAME loop) is fine
		}
		// Every response must be NOERROR or NXDOMAIN and marshalable.
		if resp.Rcode != dnswire.RcodeSuccess && resp.Rcode != dnswire.RcodeNXDomain {
			return false
		}
		resp.Questions = []dnswire.Question{{Name: "q.example.com", Type: qtype, Class: dnswire.ClassIN}}
		_, merr := resp.Marshal()
		return merr == nil || len(name) > 200 // very long names legitimately fail to marshal
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Property: wildcard answers always carry the query name as owner.
func TestWildcardOwnerNameProperty(t *testing.T) {
	z := NewZone("w.example")
	z.MustAdd(dnswire.RR{Name: "*", Type: dnswire.TypeA, TTL: 60, Addr: netip.MustParseAddr("192.0.2.9")})
	f := func(label uint16) bool {
		name := "h" + itoa(int(label)) + ".w.example."
		resp, err := z.Resolve(dnswire.Question{Name: name, Type: dnswire.TypeA, Class: dnswire.ClassIN})
		if err != nil || len(resp.Answers) != 1 {
			return false
		}
		return resp.Answers[0].Name == name
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}
