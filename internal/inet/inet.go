// Package inet models "the rest of the internet" behind the 5G
// gateway's WAN port: one multi-addressed host serving every public
// site the paper's testbed touches (ip6.me, the test-ipv6 mirror,
// IPv4-only sites like sc24.supercomputing.org and the VTC provider,
// and raw UDP services reached by literal like Echolink), plus the
// public DNS data those names resolve from.
//
// Full recursive resolution from the root is abstracted to a direct
// lookup into this registry (documented in DESIGN.md): the testbed's
// resolvers still answer clients over real simulated wire traffic.
package inet

import (
	"net/netip"

	"repro/internal/dns"
	"repro/internal/dns64"
	"repro/internal/dnswire"
	"repro/internal/gateway5g"
	"repro/internal/hoststack"
	"repro/internal/httpsim"
	"repro/internal/ndp"
	"repro/internal/netsim"
)

// Internet is the cloud host plus its DNS registry. HTTP requests are
// routed by destination address (each site has its own addresses, like
// real per-site servers), so a poisoned A record pointing a hostname at
// ip6.me's address lands on ip6.me's page regardless of the Host header.
type Internet struct {
	Host   *hoststack.Host
	Auth   *dns.Authority
	byAddr map[netip.Addr]httpsim.Handler

	net     *netsim.Network
	primary netip.Addr
	// reverse holds the shared in-addr.arpa zone: every site's IPv4
	// address gets a PTR so RFC 6147 PTR synthesis resolves end to end.
	reverse *dns.Zone
}

// New builds the cloud. Call ConnectBehind to cable it to the gateway.
func New(net *netsim.Network) *Internet {
	h := hoststack.New(net, "internet", hoststack.Behavior{
		Name: "internet", IPv4Enabled: true, IPv6Enabled: true, SupportsRDNSS: true,
	})
	i := &Internet{
		Host:    h,
		Auth:    dns.NewAuthority(),
		byAddr:  make(map[netip.Addr]httpsim.Handler),
		net:     net,
		primary: netip.MustParseAddr("198.18.0.1"),
		reverse: dns.NewZone("in-addr.arpa"),
	}
	i.Auth.AddZone(i.reverse)
	// The primary address exists so the host has a valid v4 identity; all
	// services are aliases.
	h.SetIPv4Static(i.primary, netip.PrefixFrom(i.primary, 32), netip.Addr{})
	httpsim.Serve(h, 80, httpsim.HandlerFunc(func(req *httpsim.Request) *httpsim.Response {
		if handler, ok := i.byAddr[req.ServerAddr]; ok {
			return handler.Serve(req)
		}
		return &httpsim.Response{Status: 404, Body: []byte("no such site")}
	}))
	return i
}

// ConnectBehind cables the cloud to the gateway's WAN port and installs
// the static routes back through it.
func (i *Internet) ConnectBehind(gw *gateway5g.Gateway) {
	gw.ConnectWAN(i.Host.NIC)
	i.Host.SetIPv4Static(i.primary, netip.PrefixFrom(i.primary, 32), gw.NAT44.Public())
	i.Host.PreloadARP(gw.NAT44.Public(), gw.WANMAC())
	i.Host.PreloadARP(gw.NAT64Public(), gw.WANMAC())
	gwLL := ndp.LinkLocal(gw.WANMAC())
	i.Host.AddStaticRouteV6(gwLL, gw.WANMAC())
}

// Resolver returns the public-DNS view: authoritative data for every
// registered site, NXDOMAIN elsewhere. The testbed's healthy DNS64 and
// the gateway's carrier DNS proxy recurse through this.
func (i *Internet) Resolver() dns.Resolver {
	return dns.ResolverFunc(func(q dnswire.Question) (*dnswire.Message, error) {
		if z := i.Auth.Match(dnswire.CanonicalName(q.Name)); z != nil {
			return z.Resolve(q)
		}
		return dns.NXDomain(), nil
	})
}

// Site describes one public service.
type Site struct {
	// Name is the apex DNS name ("ip6.me"). Subdomain records can be
	// added to Zone afterwards.
	Name string
	// V4 and V6 are the service addresses; either may be invalid for
	// single-stack sites.
	V4 netip.Addr
	V6 netip.Addr
	// Zone is the site's authoritative zone (populated with apex records).
	Zone *dns.Zone
}

// AddSite registers a site: DNS records, host aliases, and (when
// handler is non-nil) an HTTP virtual host.
func (i *Internet) AddSite(name string, v4, v6 netip.Addr, handler httpsim.Handler) *Site {
	z := dns.NewZone(name)
	if v4.IsValid() {
		z.MustAdd(dnswire.RR{Name: "@", Type: dnswire.TypeA, TTL: 300, Addr: v4})
		i.Host.AddIPv4Alias(v4)
		i.addPTR(v4, name)
		if handler != nil {
			i.byAddr[v4] = handler
		}
	}
	if v6.IsValid() {
		z.MustAdd(dnswire.RR{Name: "@", Type: dnswire.TypeAAAA, TTL: 300, Addr: v6})
		i.Host.AddIPv6Static(v6, netip.PrefixFrom(v6, 128))
		if handler != nil {
			i.byAddr[v6] = handler
		}
	}
	i.Auth.AddZone(z)
	return &Site{Name: name, V4: v4, V6: v6, Zone: z}
}

// AddSubdomain registers an additional name within a site, with its own
// addresses and optional handler.
func (i *Internet) AddSubdomain(site *Site, label string, v4, v6 netip.Addr, handler httpsim.Handler) {
	if v4.IsValid() {
		site.Zone.MustAdd(dnswire.RR{Name: label, Type: dnswire.TypeA, TTL: 300, Addr: v4})
		i.Host.AddIPv4Alias(v4)
		if handler != nil {
			i.byAddr[v4] = handler
		}
	}
	if v6.IsValid() {
		site.Zone.MustAdd(dnswire.RR{Name: label, Type: dnswire.TypeAAAA, TTL: 300, Addr: v6})
		i.Host.AddIPv6Static(v6, netip.PrefixFrom(v6, 128))
		if handler != nil {
			i.byAddr[v6] = handler
		}
	}
}

// addPTR registers the reverse mapping for a site address.
func (i *Internet) addPTR(v4 netip.Addr, name string) {
	i.reverse.MustAdd(dnswire.RR{
		Name: dns64.ReverseName(v4), Type: dnswire.TypePTR, TTL: 300,
		Target: dnswire.CanonicalName(name),
	})
}

// ServeLocal dispatches a request to the site bound at dst without any
// wire traffic — used by the VPN concentrator, which lives on the same
// cloud and egresses onto the IPv4 internet directly.
func (i *Internet) ServeLocal(dst netip.Addr, req *httpsim.Request) *httpsim.Response {
	if handler, ok := i.byAddr[dst]; ok {
		req.ServerAddr = dst
		return handler.Serve(req)
	}
	return &httpsim.Response{Status: 404, Body: []byte("no such site")}
}

// BindUDPService exposes a raw UDP service (e.g. the Echolink-style
// IPv4-literal endpoint) on the cloud host.
func (i *Internet) BindUDPService(addr netip.Addr, port uint16, handler hoststack.UDPHandler) {
	if addr.Is4() {
		i.Host.AddIPv4Alias(addr)
	} else {
		i.Host.AddIPv6Static(addr, netip.PrefixFrom(addr, 128))
	}
	i.Host.BindUDP(port, handler)
}
