package inet

import (
	"net/netip"
	"testing"

	"repro/internal/dnswire"
	"repro/internal/httpsim"
	"repro/internal/netsim"
)

func okHandler(tag string) httpsim.Handler {
	return httpsim.HandlerFunc(func(req *httpsim.Request) *httpsim.Response {
		return &httpsim.Response{Status: 200, Body: []byte(tag)}
	})
}

func TestResolverServesRegisteredSites(t *testing.T) {
	i := New(netsim.NewNetwork())
	site := i.AddSite("ip6.me", netip.MustParseAddr("23.153.8.71"), netip.MustParseAddr("2001:4810:0:3::71"), okHandler("ip6me"))
	i.AddSubdomain(site, "www", netip.MustParseAddr("23.153.8.72"), netip.Addr{}, nil)

	r := i.Resolver()
	resp, err := r.Resolve(dnswire.Question{Name: "ip6.me", Type: dnswire.TypeA, Class: dnswire.ClassIN})
	if err != nil || len(resp.Answers) != 1 || resp.Answers[0].Addr != netip.MustParseAddr("23.153.8.71") {
		t.Fatalf("A = %+v err=%v", resp, err)
	}
	resp, err = r.Resolve(dnswire.Question{Name: "ip6.me", Type: dnswire.TypeAAAA, Class: dnswire.ClassIN})
	if err != nil || len(resp.Answers) != 1 {
		t.Fatalf("AAAA = %+v err=%v", resp, err)
	}
	resp, err = r.Resolve(dnswire.Question{Name: "www.ip6.me", Type: dnswire.TypeA, Class: dnswire.ClassIN})
	if err != nil || len(resp.Answers) != 1 {
		t.Fatalf("sub A = %+v err=%v", resp, err)
	}
	// Unknown names are NXDOMAIN (not REFUSED): this is "all of DNS".
	resp, err = r.Resolve(dnswire.Question{Name: "unknown.example", Type: dnswire.TypeA, Class: dnswire.ClassIN})
	if err != nil || resp.Rcode != dnswire.RcodeNXDomain {
		t.Errorf("unknown = %+v err=%v", resp, err)
	}
}

func TestServeLocalRoutesByAddress(t *testing.T) {
	i := New(netsim.NewNetwork())
	a4 := netip.MustParseAddr("203.0.113.50")
	i.AddSite("a.example", a4, netip.Addr{}, okHandler("site-a"))

	resp := i.ServeLocal(a4, &httpsim.Request{Method: "GET", Path: "/", Host: "whatever.example"})
	if string(resp.Body) != "site-a" {
		t.Errorf("body = %q (routing must be by address, not Host header)", resp.Body)
	}
	resp = i.ServeLocal(netip.MustParseAddr("203.0.113.51"), &httpsim.Request{})
	if resp.Status != 404 {
		t.Errorf("unknown addr status = %d", resp.Status)
	}
}

func TestSingleStackSites(t *testing.T) {
	i := New(netsim.NewNetwork())
	v4only := i.AddSite("v4.example", netip.MustParseAddr("198.51.100.1"), netip.Addr{}, nil)
	v6only := i.AddSite("v6.example", netip.Addr{}, netip.MustParseAddr("2001:db8::1"), nil)

	r := i.Resolver()
	resp, _ := r.Resolve(dnswire.Question{Name: "v4.example", Type: dnswire.TypeAAAA, Class: dnswire.ClassIN})
	if len(resp.Answers) != 0 || resp.Rcode != dnswire.RcodeSuccess {
		t.Errorf("v4-only AAAA should be NODATA: %+v", resp)
	}
	resp, _ = r.Resolve(dnswire.Question{Name: "v6.example", Type: dnswire.TypeA, Class: dnswire.ClassIN})
	if len(resp.Answers) != 0 || resp.Rcode != dnswire.RcodeSuccess {
		t.Errorf("v6-only A should be NODATA: %+v", resp)
	}
	_ = v4only
	_ = v6only
}
