package trace

import (
	"net/netip"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/dhcp4"
	"repro/internal/dnswire"
	"repro/internal/netsim"
	"repro/internal/packet"
)

var (
	v4a = netip.MustParseAddr("192.168.12.10")
	v4b = netip.MustParseAddr("23.153.8.71")
	v6a = netip.MustParseAddr("fd00:976a::1")
	v6b = netip.MustParseAddr("fd00:976a::9")
)

func TestSummarizeARP(t *testing.T) {
	req := &packet.ARP{Op: packet.ARPRequest, SenderIP: v4a, TargetIP: v4b}
	s := Summarize(netsim.Frame{EtherType: netsim.EtherTypeARP, Payload: req.Marshal()})
	if !strings.Contains(s, "who-has 23.153.8.71") {
		t.Errorf("s = %q", s)
	}
	rep := &packet.ARP{Op: packet.ARPReply, SenderIP: v4b, SenderMAC: [6]byte{2, 0, 0, 0, 0, 1}}
	s = Summarize(netsim.Frame{EtherType: netsim.EtherTypeARP, Payload: rep.Marshal()})
	if !strings.Contains(s, "is-at 02:00:00:00:00:01") {
		t.Errorf("s = %q", s)
	}
}

func TestSummarizeDNSQuery(t *testing.T) {
	q := dnswire.NewQuery(1, "sc24.supercomputing.org", dnswire.TypeAAAA)
	wire, _ := q.Marshal()
	u := &packet.UDP{SrcPort: 49152, DstPort: 53, Payload: wire}
	p := &packet.IPv6{NextHeader: packet.ProtoUDP, HopLimit: 64, Src: v6a, Dst: v6b, Payload: u.Marshal(v6a, v6b)}
	s := Summarize(netsim.Frame{EtherType: netsim.EtherTypeIPv6, Payload: p.Marshal()})
	for _, want := range []string{"IPv6", "UDP 49152 > 53", "DNS query", "sc24.supercomputing.org. AAAA"} {
		if !strings.Contains(s, want) {
			t.Errorf("s = %q missing %q", s, want)
		}
	}
}

func TestSummarizeDNSResponseWithAnswer(t *testing.T) {
	q := dnswire.NewQuery(1, "ip6.me", dnswire.TypeA)
	r := dnswire.ReplyTo(q)
	r.Answers = []dnswire.RR{{Name: "ip6.me", Type: dnswire.TypeA, TTL: 60, Addr: v4b}}
	wire, _ := r.Marshal()
	u := &packet.UDP{SrcPort: 53, DstPort: 49152, Payload: wire}
	p := &packet.IPv4{Protocol: packet.ProtoUDP, TTL: 64, Src: v4b, Dst: v4a, Payload: u.Marshal(v4b, v4a)}
	s := Summarize(netsim.Frame{EtherType: netsim.EtherTypeIPv4, Payload: p.Marshal()})
	if !strings.Contains(s, "DNS response NOERROR A=23.153.8.71") {
		t.Errorf("s = %q", s)
	}
}

func TestSummarizeDHCP(t *testing.T) {
	m := dhcp4.NewMessage(dhcp4.OpReply, 7, [6]byte{2, 0, 0, 0, 0, 9})
	m.SetType(dhcp4.Offer)
	m.SetIPv6OnlyPreferred(1800)
	u := &packet.UDP{SrcPort: 67, DstPort: 68, Payload: m.Marshal()}
	bcast := netip.MustParseAddr("255.255.255.255")
	p := &packet.IPv4{Protocol: packet.ProtoUDP, TTL: 64, Src: v4a, Dst: bcast, Payload: u.Marshal(v4a, bcast)}
	s := Summarize(netsim.Frame{EtherType: netsim.EtherTypeIPv4, Payload: p.Marshal()})
	if !strings.Contains(s, "DHCP OFFER") || !strings.Contains(s, "option108=1800s") {
		t.Errorf("s = %q", s)
	}
}

func TestSummarizeTCP(t *testing.T) {
	tc := &packet.TCP{SrcPort: 49152, DstPort: 80, Seq: 1, Flags: packet.TCPSyn, Payload: nil}
	p := &packet.IPv6{NextHeader: packet.ProtoTCP, HopLimit: 64, Src: v6a, Dst: v6b, Payload: tc.Marshal(v6a, v6b)}
	s := Summarize(netsim.Frame{EtherType: netsim.EtherTypeIPv6, Payload: p.Marshal()})
	if !strings.Contains(s, "TCP 49152 > 80 [S] len 0") {
		t.Errorf("s = %q", s)
	}
}

func TestSummarizeICMPv6Types(t *testing.T) {
	for typ, want := range map[uint8]string{
		packet.ICMPv6RouterAdvert: "router advertisement",
		packet.ICMPv6PacketTooBig: "packet too big",
		packet.ICMPv6EchoRequest:  "echo request",
	} {
		body := (&packet.ICMP{Type: typ, Body: make([]byte, 24)}).MarshalV6(v6a, v6b)
		p := &packet.IPv6{NextHeader: packet.ProtoICMPv6, HopLimit: 255, Src: v6a, Dst: v6b, Payload: body}
		s := Summarize(netsim.Frame{EtherType: netsim.EtherTypeIPv6, Payload: p.Marshal()})
		if !strings.Contains(s, want) {
			t.Errorf("type %d: s = %q", typ, s)
		}
	}
}

func TestSummarizeNeverPanics(t *testing.T) {
	prop := func(ethertype uint16, data []byte) (ok bool) {
		defer func() {
			if r := recover(); r != nil {
				ok = false
			}
		}()
		_ = Summarize(netsim.Frame{EtherType: ethertype, Payload: data})
		// Also the three known ethertypes over arbitrary payloads.
		for _, et := range []uint16{netsim.EtherTypeARP, netsim.EtherTypeIPv4, netsim.EtherTypeIPv6} {
			_ = Summarize(netsim.Frame{EtherType: et, Payload: data})
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestTapRecordsAndBounds(t *testing.T) {
	net := netsim.NewNetwork()
	sw := netsim.NewSwitch(net, "sw")
	a := net.NewNIC("a", nil)
	b := net.NewNIC("b", netsim.FrameHandlerFunc(func(*netsim.NIC, netsim.Frame) {}))
	sw.AttachPort(a)
	sw.AttachPort(b)
	tap := &Tap{Max: 2}
	sw.AddFilter(tap.Filter())

	for i := 0; i < 5; i++ {
		req := &packet.ARP{Op: packet.ARPRequest, SenderIP: v4a, TargetIP: v4b}
		a.Transmit(netsim.Frame{Dst: netsim.Broadcast, EtherType: netsim.EtherTypeARP, Payload: req.Marshal()})
	}
	net.Run(0)
	if len(tap.Lines) != 2 {
		t.Errorf("tap lines = %d, want capped 2", len(tap.Lines))
	}
	if !strings.Contains(tap.Lines[0], "port0") || !strings.Contains(tap.Lines[0], "who-has") {
		t.Errorf("line = %q", tap.Lines[0])
	}
}
