// Package trace renders simulated frames as one-line, tcpdump-style
// summaries and provides a switch tap that records them. It exists for
// operability: `testbedsim -pcap` shows exactly what crossed the access
// switch, which is how the paper's authors debugged their testbed (RA
// captures, DHCP races, poisoned answers).
package trace

import (
	"fmt"
	"strings"

	"repro/internal/dhcp4"
	"repro/internal/dnswire"
	"repro/internal/netsim"
	"repro/internal/packet"
)

// Summarize renders one frame as a single line.
func Summarize(f netsim.Frame) string {
	switch f.EtherType {
	case netsim.EtherTypeARP:
		return summarizeARP(f.Payload)
	case netsim.EtherTypeIPv4:
		return summarizeIPv4(f.Payload)
	case netsim.EtherTypeIPv6:
		return summarizeIPv6(f.Payload)
	default:
		return fmt.Sprintf("ethertype %#04x (%d bytes)", f.EtherType, len(f.Payload))
	}
}

func summarizeARP(b []byte) string {
	a, err := packet.ParseARP(b)
	if err != nil {
		return "ARP <malformed>"
	}
	if a.Op == packet.ARPRequest {
		return fmt.Sprintf("ARP who-has %v tell %v", a.TargetIP, a.SenderIP)
	}
	return fmt.Sprintf("ARP %v is-at %02x:%02x:%02x:%02x:%02x:%02x",
		a.SenderIP, a.SenderMAC[0], a.SenderMAC[1], a.SenderMAC[2], a.SenderMAC[3], a.SenderMAC[4], a.SenderMAC[5])
}

func summarizeIPv4(b []byte) string {
	p, err := packet.ParseIPv4(b)
	if err != nil {
		return "IPv4 <malformed>"
	}
	head := fmt.Sprintf("IPv4 %v > %v", p.Src, p.Dst)
	switch p.Protocol {
	case packet.ProtoUDP:
		return head + " " + summarizeUDP(p.Payload, p.Src, p.Dst)
	case packet.ProtoTCP:
		return head + " " + summarizeTCPBytes(p.Payload)
	case packet.ProtoICMP:
		ic, err := packet.ParseICMPv4(p.Payload)
		if err != nil {
			return head + " ICMP <malformed>"
		}
		return head + " " + icmpV4Name(ic.Type, ic.Code)
	default:
		return fmt.Sprintf("%s proto %d", head, p.Protocol)
	}
}

func summarizeIPv6(b []byte) string {
	p, err := packet.ParseIPv6(b)
	if err != nil {
		return "IPv6 <malformed>"
	}
	head := fmt.Sprintf("IPv6 %v > %v", p.Src, p.Dst)
	switch p.NextHeader {
	case packet.ProtoUDP:
		return head + " " + summarizeUDP(p.Payload, p.Src, p.Dst)
	case packet.ProtoTCP:
		return head + " " + summarizeTCPBytes(p.Payload)
	case packet.ProtoICMPv6:
		if len(p.Payload) == 0 {
			return head + " ICMPv6 <empty>"
		}
		return head + " " + icmpV6Name(p.Payload[0], func() uint8 {
			if len(p.Payload) > 1 {
				return p.Payload[1]
			}
			return 0
		}())
	default:
		return fmt.Sprintf("%s next-header %d", head, p.NextHeader)
	}
}

// summarizeUDP decodes well-known payloads (DNS, DHCP) for readability.
func summarizeUDP(b []byte, src, dst interface{ String() string }) string {
	if len(b) < packet.UDPHeaderLen {
		return "UDP <malformed>"
	}
	sp := uint16(b[0])<<8 | uint16(b[1])
	dp := uint16(b[2])<<8 | uint16(b[3])
	head := fmt.Sprintf("UDP %d > %d", sp, dp)
	payload := b[packet.UDPHeaderLen:]
	switch {
	case sp == 53 || dp == 53:
		if m, err := dnswire.Parse(payload); err == nil {
			return head + " " + summarizeDNS(m)
		}
	case sp == dhcp4.ServerPort || dp == dhcp4.ServerPort || sp == dhcp4.ClientPort || dp == dhcp4.ClientPort:
		if m, err := dhcp4.Parse(payload); err == nil {
			return head + " " + summarizeDHCP(m)
		}
	}
	return fmt.Sprintf("%s (%d bytes)", head, len(payload))
}

func summarizeDNS(m *dnswire.Message) string {
	var sb strings.Builder
	if m.Response {
		fmt.Fprintf(&sb, "DNS response %s", dnswire.RcodeString(m.Rcode))
		for i, rr := range m.Answers {
			if i == 3 {
				fmt.Fprintf(&sb, " …+%d", len(m.Answers)-3)
				break
			}
			switch rr.Type {
			case dnswire.TypeA, dnswire.TypeAAAA:
				fmt.Fprintf(&sb, " %s=%v", dnswire.TypeString(rr.Type), rr.Addr)
			case dnswire.TypeCNAME, dnswire.TypePTR:
				fmt.Fprintf(&sb, " %s=%s", dnswire.TypeString(rr.Type), rr.Target)
			}
		}
	} else {
		sb.WriteString("DNS query")
	}
	for _, q := range m.Questions {
		fmt.Fprintf(&sb, " %s %s", q.Name, dnswire.TypeString(q.Type))
	}
	return sb.String()
}

func summarizeDHCP(m *dhcp4.Message) string {
	names := map[uint8]string{
		dhcp4.Discover: "DISCOVER", dhcp4.Offer: "OFFER", dhcp4.Request: "REQUEST",
		dhcp4.ACK: "ACK", dhcp4.NAK: "NAK", dhcp4.Release: "RELEASE", dhcp4.Inform: "INFORM",
	}
	name, ok := names[m.Type()]
	if !ok {
		name = fmt.Sprintf("type %d", m.Type())
	}
	s := "DHCP " + name
	if m.YIAddr.IsValid() && m.YIAddr.Is4() && m.YIAddr.String() != "0.0.0.0" {
		s += " yiaddr " + m.YIAddr.String()
	}
	if secs, has := m.IPv6OnlyPreferred(); has {
		s += fmt.Sprintf(" option108=%ds", secs)
	}
	return s
}

func icmpV4Name(typ, code uint8) string {
	switch typ {
	case packet.ICMPv4Echo:
		return "ICMP echo request"
	case packet.ICMPv4EchoReply:
		return "ICMP echo reply"
	case packet.ICMPv4DestUnreachable:
		return fmt.Sprintf("ICMP unreachable (code %d)", code)
	case packet.ICMPv4TimeExceeded:
		return "ICMP time exceeded"
	default:
		return fmt.Sprintf("ICMP type %d code %d", typ, code)
	}
}

func icmpV6Name(typ, code uint8) string {
	switch typ {
	case packet.ICMPv6RouterSolicit:
		return "ICMPv6 router solicitation"
	case packet.ICMPv6RouterAdvert:
		return "ICMPv6 router advertisement"
	case packet.ICMPv6NeighborSolicit:
		return "ICMPv6 neighbor solicitation"
	case packet.ICMPv6NeighborAdvert:
		return "ICMPv6 neighbor advertisement"
	case packet.ICMPv6EchoRequest:
		return "ICMPv6 echo request"
	case packet.ICMPv6EchoReply:
		return "ICMPv6 echo reply"
	case packet.ICMPv6DestUnreachable:
		return fmt.Sprintf("ICMPv6 unreachable (code %d)", code)
	case packet.ICMPv6PacketTooBig:
		return "ICMPv6 packet too big"
	case packet.ICMPv6TimeExceeded:
		return "ICMPv6 time exceeded"
	default:
		return fmt.Sprintf("ICMPv6 type %d code %d", typ, code)
	}
}

func summarizeTCPBytes(b []byte) string {
	if len(b) < packet.TCPMinHeaderLen {
		return "TCP <malformed>"
	}
	sp := uint16(b[0])<<8 | uint16(b[1])
	dp := uint16(b[2])<<8 | uint16(b[3])
	flags := b[13]
	var fl []string
	for _, f := range []struct {
		bit  uint8
		name string
	}{{packet.TCPSyn, "S"}, {packet.TCPFin, "F"}, {packet.TCPRst, "R"}, {packet.TCPPsh, "P"}, {packet.TCPAck, "."}} {
		if flags&f.bit != 0 {
			fl = append(fl, f.name)
		}
	}
	hlen := int(b[12]>>4) * 4
	plen := 0
	if hlen >= packet.TCPMinHeaderLen && hlen <= len(b) {
		plen = len(b) - hlen
	}
	return fmt.Sprintf("TCP %d > %d [%s] len %d", sp, dp, strings.Join(fl, ""), plen)
}

// Tap records frame summaries crossing a switch.
type Tap struct {
	// Max bounds retained lines (0 = unlimited).
	Max   int
	Lines []string
}

// Filter returns a pass-through switch filter feeding the tap.
func (t *Tap) Filter() netsim.FrameFilter {
	return func(port int, f netsim.Frame) bool {
		if t.Max == 0 || len(t.Lines) < t.Max {
			t.Lines = append(t.Lines, fmt.Sprintf("port%d %v > %v: %s", port, f.Src, f.Dst, Summarize(f)))
		}
		return true
	}
}
