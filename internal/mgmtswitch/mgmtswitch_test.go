package mgmtswitch

import (
	"net/netip"
	"testing"
	"time"

	"repro/internal/hoststack"
	"repro/internal/netsim"
	"repro/internal/packet"
)

var ula = netip.MustParsePrefix("fd00:976a::/64")

func newTestSwitch(net *netsim.Network, cfg Config) *Switch {
	return New(net, "sw", cfg)
}

func TestULARAGivesClientsSLAAC(t *testing.T) {
	net := netsim.NewNetwork()
	sw := newTestSwitch(net, Config{ULAPrefix: ula, AdvertiseULA: true})
	c := hoststack.New(net, "c", hoststack.Behavior{Name: "c", IPv6Enabled: true, SupportsRDNSS: true})
	sw.AttachPort(c.NIC)

	sw.Start()
	c.Start()
	net.RunFor(time.Second)

	addrs := c.IPv6GlobalAddrs()
	if len(addrs) != 1 || !ula.Contains(addrs[0]) {
		t.Errorf("addrs = %v", addrs)
	}
	if sw.RAsSent == 0 {
		t.Error("no RAs sent")
	}
}

func TestRSTriggersImmediateRA(t *testing.T) {
	net := netsim.NewNetwork()
	sw := newTestSwitch(net, Config{ULAPrefix: ula, AdvertiseULA: true, RAInterval: time.Hour})
	c := hoststack.New(net, "c", hoststack.Behavior{Name: "c", IPv6Enabled: true, SupportsRDNSS: true})
	sw.AttachPort(c.NIC)

	// No Start(): no beacon for an hour. The client's RS must provoke one.
	c.Start()
	net.RunFor(time.Second)
	if len(c.IPv6GlobalAddrs()) != 1 {
		t.Errorf("RS did not provoke an RA: %v", c.IPv6GlobalAddrs())
	}
}

func TestSwitchRAIsLowPreference(t *testing.T) {
	net := netsim.NewNetwork()
	sw := newTestSwitch(net, Config{ULAPrefix: ula, AdvertiseULA: true})
	var captured []netsim.Frame
	sink := net.NewNIC("sink", netsim.FrameHandlerFunc(func(_ *netsim.NIC, f netsim.Frame) {
		captured = append(captured, f)
	}))
	sw.AttachPort(sink)
	sw.Start()
	net.Run(0)

	if len(captured) == 0 {
		t.Fatal("no RA captured")
	}
	p, err := packet.ParseIPv6(captured[0].Payload)
	if err != nil {
		t.Fatal(err)
	}
	ic, err := packet.ParseICMPv6(p.Payload, p.Src, p.Dst)
	if err != nil || ic.Type != packet.ICMPv6RouterAdvert {
		t.Fatalf("not an RA: %v %d", err, ic.Type)
	}
	// Preference bits 01x in byte1: low preference = 0b11 in bits 3-4.
	if ic.Body[1]>>3&0x3 != 0x3 {
		t.Errorf("RA flags %#02x: not low preference", ic.Body[1])
	}
}

// dhcpOfferFrame fabricates a DHCP server->client frame.
func dhcpOfferFrame(srcMAC netsim.MAC) netsim.Frame {
	src := netip.MustParseAddr("192.168.12.1")
	dst := netip.MustParseAddr("255.255.255.255")
	u := &packet.UDP{SrcPort: 67, DstPort: 68, Payload: make([]byte, 300)}
	p := &packet.IPv4{Protocol: packet.ProtoUDP, TTL: 64, Src: src, Dst: dst, Payload: u.Marshal(src, dst)}
	return netsim.Frame{Src: srcMAC, Dst: netsim.Broadcast, EtherType: netsim.EtherTypeIPv4, Payload: p.Marshal()}
}

func TestSnoopingBlocksUntrustedPortOnly(t *testing.T) {
	net := netsim.NewNetwork()
	sw := newTestSwitch(net, Config{ULAPrefix: ula, SnoopDHCP: true})

	var got []netsim.Frame
	rogueNIC := net.NewNIC("rogue", nil)
	trustedNIC := net.NewNIC("trusted", nil)
	clientNIC := net.NewNIC("client", netsim.FrameHandlerFunc(func(_ *netsim.NIC, f netsim.Frame) {
		got = append(got, f)
	}))
	roguePort := sw.AttachPort(rogueNIC)
	sw.AttachPort(trustedNIC)
	sw.AttachPort(clientNIC)
	sw.BlockDHCPFrom(roguePort)

	rogueNIC.Transmit(dhcpOfferFrame(rogueNIC.MAC()))
	net.Run(0)
	if len(got) != 0 {
		t.Fatalf("snooped frame delivered: %d", len(got))
	}
	if sw.SnoopedDrops != 1 {
		t.Errorf("SnoopedDrops = %d", sw.SnoopedDrops)
	}

	trustedNIC.Transmit(dhcpOfferFrame(trustedNIC.MAC()))
	net.Run(0)
	if len(got) != 1 {
		t.Errorf("trusted DHCP blocked: got %d frames", len(got))
	}
}

func TestSnoopingPassesClientRequests(t *testing.T) {
	net := netsim.NewNetwork()
	sw := newTestSwitch(net, Config{ULAPrefix: ula, SnoopDHCP: true})
	var got []netsim.Frame
	gwNIC := net.NewNIC("gw", netsim.FrameHandlerFunc(func(_ *netsim.NIC, f netsim.Frame) {
		got = append(got, f)
	}))
	clientNIC := net.NewNIC("client", nil)
	gwPort := sw.AttachPort(gwNIC)
	sw.AttachPort(clientNIC)
	sw.BlockDHCPFrom(gwPort)

	// Client DISCOVER (src port 68) must flow even toward the blocked port.
	src := netip.AddrFrom4([4]byte{})
	dst := netip.MustParseAddr("255.255.255.255")
	u := &packet.UDP{SrcPort: 68, DstPort: 67, Payload: make([]byte, 300)}
	p := &packet.IPv4{Protocol: packet.ProtoUDP, TTL: 64, Src: src, Dst: dst, Payload: u.Marshal(src, dst)}
	clientNIC.Transmit(netsim.Frame{Dst: netsim.Broadcast, EtherType: netsim.EtherTypeIPv4, Payload: p.Marshal()})
	net.Run(0)
	if len(got) != 1 {
		t.Errorf("client DHCP request dropped (got %d)", len(got))
	}
}
