// Package mgmtswitch models the testbed's managed switch and its two
// interventions (paper §IV.A):
//
//  1. It injects its own low-priority Router Advertisements for the
//     fd00:976a::/64 ULA prefix so the gateway's dead RDNSS addresses
//     become reachable on-link (the Raspberry Pi DNS64 server lives
//     there).
//  2. DHCPv4 snooping blocks the 5G gateway's non-configurable DHCPv4
//     server so the Raspberry Pi server (with option 108) wins every
//     DORA exchange.
package mgmtswitch

import (
	"net/netip"
	"time"

	"repro/internal/dhcp4"
	"repro/internal/ndp"
	"repro/internal/netsim"
	"repro/internal/packet"
)

// Config parameterizes the managed switch.
type Config struct {
	// ULAPrefix is advertised with low router preference (and SLAAC).
	ULAPrefix netip.Prefix
	// RAInterval is the beacon period.
	RAInterval time.Duration
	// AdvertiseULA enables intervention 1.
	AdvertiseULA bool
	// SnoopDHCP enables intervention 2 once a trusted port is set.
	SnoopDHCP bool
	// ScopedRS answers Router Solicitations out of the soliciting port
	// only, instead of beaconing the whole broadcast domain. Fabric
	// worlds set it: with trunk scoping on, the solicited RA travels
	// down exactly one access trunk and floods only that domain.
	ScopedRS bool
}

// Switch wraps a learning switch with the managed-switch features.
type Switch struct {
	*netsim.Switch
	cfg Config
	net *netsim.Network

	mac       netsim.MAC
	linkLocal netip.Addr

	blockedPorts map[int]bool
	raTimer      *netsim.Timer
	// raNextAt is the virtual deadline of the pending ULA beacon; world
	// reuse re-arms the timer at exactly this instant after a rewind.
	raNextAt time.Time

	// SnoopedDrops counts DHCPv4 server frames blocked by snooping.
	SnoopedDrops uint64
	RAsSent      uint64
}

// New creates a managed switch on the fabric.
func New(net *netsim.Network, name string, cfg Config) *Switch {
	if cfg.RAInterval == 0 {
		cfg.RAInterval = 10 * time.Second
	}
	s := &Switch{
		Switch:       netsim.NewSwitch(net, name),
		cfg:          cfg,
		net:          net,
		mac:          net.AllocMAC(),
		blockedPorts: make(map[int]bool),
	}
	s.linkLocal = ndp.LinkLocal(s.mac)
	if cfg.SnoopDHCP {
		s.AddFilter(s.snoopFilter)
	}
	if cfg.AdvertiseULA {
		s.AddFilter(s.rsWatcher)
	}
	return s
}

// rsWatcher never blocks traffic; it answers Router Solicitations with
// the switch's ULA RA so client bring-up does not wait a beacon period.
func (s *Switch) rsWatcher(ingress int, f netsim.Frame) bool {
	if f.EtherType != netsim.EtherTypeIPv6 {
		return true
	}
	p, err := packet.ParseIPv6(f.Payload)
	if err == nil && p.NextHeader == packet.ProtoICMPv6 && len(p.Payload) > 0 &&
		p.Payload[0] == packet.ICMPv6RouterSolicit {
		// Reply after the solicitation itself has been forwarded.
		if s.cfg.ScopedRS {
			// Fabric mode: answer out of the soliciting port only. With
			// trunk scoping the RA then floods exactly one access domain.
			port := ingress
			s.net.Clock.AfterFunc(0, func() { s.sendRAPort(port) })
		} else {
			s.net.Clock.AfterFunc(0, s.sendRA)
		}
	}
	return true
}

// LinkLocal returns the switch's RA source address.
func (s *Switch) LinkLocal() netip.Addr { return s.linkLocal }

// BlockDHCPFrom marks a port as an untrusted DHCP source (the gateway's
// port); server-to-client DHCP frames ingressing there are dropped.
func (s *Switch) BlockDHCPFrom(port int) { s.blockedPorts[port] = true }

// EnableDHCPDirectedBroadcast turns on the snooping feature fabric
// worlds need once ScopeTrunks is set: DHCPv4 server replies addressed
// to the link broadcast (clients with no address yet ask for broadcast
// replies, RFC 2131 §4.1) would never cross a scoped trunk. Real
// DHCP-snooping switches solve this by directing such replies at the
// port where the client's hardware address was learned; this filter
// does the same, retransmitting the reply as link-layer unicast to the
// chaddr out of its learned (trunk) port while the broadcast copy still
// floods the local — infrastructure — ports.
func (s *Switch) EnableDHCPDirectedBroadcast() {
	s.AddFilter(s.directedBroadcastFilter)
}

func (s *Switch) directedBroadcastFilter(_ int, f netsim.Frame) bool {
	if f.Dst != netsim.Broadcast || f.EtherType != netsim.EtherTypeIPv4 {
		return true
	}
	p, err := packet.ParseIPv4(f.Payload)
	if err != nil || p.Protocol != packet.ProtoUDP || len(p.Payload) < packet.UDPHeaderLen {
		return true
	}
	if srcPort := uint16(p.Payload[0])<<8 | uint16(p.Payload[1]); srcPort != dhcp4.ServerPort {
		return true
	}
	msg, err := dhcp4.Parse(p.Payload[packet.UDPHeaderLen:])
	if err != nil {
		return true
	}
	mac := netsim.MAC(msg.CHAddr)
	port, ok := s.PortOf(mac)
	if !ok || !s.IsTrunk(port) {
		return true // client is local (or unknown): the flood reaches it
	}
	// Deliver after the broadcast itself has been processed, mirroring
	// rsWatcher's ordering.
	directed := f
	directed.Dst = mac
	s.net.Clock.AfterFunc(0, func() { s.PortNIC(port).Transmit(directed) })
	return true
}

// snoopFilter drops DHCPv4 server traffic (UDP source port 67) arriving
// on untrusted ports.
func (s *Switch) snoopFilter(port int, f netsim.Frame) bool {
	if !s.blockedPorts[port] || f.EtherType != netsim.EtherTypeIPv4 {
		return true
	}
	p, err := packet.ParseIPv4(f.Payload)
	if err != nil || p.Protocol != packet.ProtoUDP || len(p.Payload) < packet.UDPHeaderLen {
		return true
	}
	srcPort := uint16(p.Payload[0])<<8 | uint16(p.Payload[1])
	if srcPort == dhcp4.ServerPort {
		s.SnoopedDrops++
		return false
	}
	return true
}

// Start begins the periodic ULA RA beacon (when enabled).
func (s *Switch) Start() {
	if !s.cfg.AdvertiseULA {
		return
	}
	s.sendRA()
	s.armRATimer()
}

func (s *Switch) armRATimer() {
	s.raNextAt = s.net.Clock.Now().Add(s.cfg.RAInterval)
	s.raTimer = s.net.Clock.AfterFunc(s.cfg.RAInterval, func() {
		s.sendRA()
		s.armRATimer()
	})
}

// raFrame builds the low-priority ULA Router Advertisement.
func (s *Switch) raFrame() netsim.Frame {
	ra := &ndp.RouterAdvert{
		CurHopLimit:    64,
		RouterLifetime: 30 * time.Minute,
		Preference:     ndp.PrefLow, // never beat the gateway for default route
		SourceLinkAddr: s.mac,
		HasSourceLink:  true,
		Prefixes: []ndp.PrefixInfo{{
			Prefix: s.cfg.ULAPrefix,
			OnLink: true, Autonomous: true,
			ValidLifetime: 2 * time.Hour, PreferredLifetime: time.Hour,
		}},
	}
	body := (&packet.ICMP{Type: packet.ICMPv6RouterAdvert, Body: ra.Marshal()}).MarshalV6(s.linkLocal, ndp.AllNodes)
	p := &packet.IPv6{NextHeader: packet.ProtoICMPv6, HopLimit: 255, Src: s.linkLocal, Dst: ndp.AllNodes, Payload: body}
	return netsim.Frame{
		Src: s.mac, Dst: netsim.MAC(packet.MulticastMAC(ndp.AllNodes)),
		EtherType: netsim.EtherTypeIPv6, Payload: p.Marshal(),
	}
}

// sendRA floods the low-priority ULA RA out of every port.
func (s *Switch) sendRA() {
	s.InjectAll(s.raFrame())
	s.RAsSent++
}

// sendRAPort transmits the ULA RA out of a single port (scoped RS
// response). The receiving side — an access-switch trunk in fabric
// worlds — floods it within its own broadcast domain only.
func (s *Switch) sendRAPort(port int) {
	if port < 0 || port >= s.NumPorts() {
		return
	}
	s.PortNIC(port).Transmit(s.raFrame())
	s.RAsSent++
}
