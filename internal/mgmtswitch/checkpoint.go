package mgmtswitch

import (
	"time"

	"repro/internal/netsim"
)

// Checkpoint is an opaque copy of the managed switch's dynamic state:
// the embedded forwarding-plane snapshot (learned table, snooped
// interest bitsets, filters, port-table length) plus the switch's own
// counters and pending ULA-beacon deadline. Captured with
// Switch.Checkpoint and restored with Switch.Restore for testbed world
// reuse.
type Checkpoint struct {
	plane        *netsim.SwitchSnapshot
	raNextAt     time.Time
	snoopedDrops uint64
	rasSent      uint64
}

// Checkpoint captures the switch's dynamic state.
func (s *Switch) Checkpoint() *Checkpoint {
	return &Checkpoint{
		plane:        s.Switch.Snapshot(),
		raNextAt:     s.raNextAt,
		snoopedDrops: s.SnoopedDrops,
		rasSent:      s.RAsSent,
	}
}

// Restore rewinds the switch to a previously captured Checkpoint and,
// when the ULA beacon is enabled, re-arms it at its recorded deadline.
// The caller must have already rewound the network clock.
func (s *Switch) Restore(c *Checkpoint) {
	s.Switch.RestoreSnapshot(c.plane)
	s.SnoopedDrops = c.snoopedDrops
	s.RAsSent = c.rasSent
	s.raNextAt = c.raNextAt
	if s.cfg.AdvertiseULA {
		s.raTimer = s.net.Clock.AfterFunc(c.raNextAt.Sub(s.net.Clock.Now()), func() {
			s.sendRA()
			s.armRATimer()
		})
	}
}
