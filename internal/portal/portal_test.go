package portal

import (
	"fmt"
	"net/netip"
	"strings"
	"testing"

	"repro/internal/httpsim"
)

func testMirrorConfig() MirrorConfig {
	return MirrorConfig{
		Name:          "test-ipv6.com",
		V4:            netip.MustParseAddr("216.218.228.119"),
		V6:            netip.MustParseAddr("2001:470:1:18::119"),
		V4Only:        netip.MustParseAddr("216.218.228.120"),
		V6Only:        netip.MustParseAddr("2001:470:1:18::120"),
		NAT64PublicV4: netip.MustParseAddr("203.0.113.1"),
	}
}

func TestIP6MeHandlerFamilies(t *testing.T) {
	h := IP6MeHandler()
	resp := h.Serve(&httpsim.Request{ClientAddr: netip.MustParseAddr("192.168.12.10")})
	body := string(resp.Body)
	if !strings.Contains(body, "family=IPv4") || !strings.Contains(body, "lack of IPv6 support") {
		t.Errorf("v4 body = %q", body)
	}
	resp = h.Serve(&httpsim.Request{ClientAddr: netip.MustParseAddr("2607:fb90::1")})
	body = string(resp.Body)
	if !strings.Contains(body, "family=IPv6") || strings.Contains(body, "lack of IPv6") {
		t.Errorf("v6 body = %q", body)
	}
}

func TestMirrorHandlerNAT64Detection(t *testing.T) {
	cfg := testMirrorConfig()
	h := MirrorHandler(cfg)
	resp := h.Serve(&httpsim.Request{ClientAddr: cfg.NAT64PublicV4})
	if !strings.Contains(string(resp.Body), "nat64=true") {
		t.Errorf("body = %q", resp.Body)
	}
	resp = h.Serve(&httpsim.Request{ClientAddr: netip.MustParseAddr("203.0.113.2")})
	if !strings.Contains(string(resp.Body), "nat64=false") {
		t.Errorf("body = %q", resp.Body)
	}
}

// synthFetcher fabricates responses per subtest for scoring-logic tests.
func synthFetcher(cfg MirrorConfig, family map[string]string, nat64 map[string]bool, fail map[string]bool) Fetcher {
	return func(url string) (*httpsim.Response, error) {
		for _, name := range SubtestNames {
			var match bool
			if name == "v4-literal" {
				match = strings.Contains(url, cfg.V4.String())
			} else {
				match = strings.Contains(url, SubtestHost(name)+"."+cfg.Name)
			}
			if !match {
				continue
			}
			if fail[name] {
				return nil, fmt.Errorf("unreachable")
			}
			body := fmt.Sprintf("mirror=%s\nfamily=%s\nnat64=%v\n", cfg.Name, family[name], nat64[name])
			if name == "v6-mtu" {
				body += strings.Repeat("x", MTUProbeSize)
			}
			return &httpsim.Response{Status: 200, Body: []byte(body)}, nil
		}
		return nil, fmt.Errorf("unknown url %s", url)
	}
}

func allIPv6(cfg MirrorConfig) (map[string]string, map[string]bool) {
	fam := map[string]string{}
	n64 := map[string]bool{}
	for _, n := range SubtestNames {
		fam[n] = "IPv6"
	}
	fam["a-record-v4"] = "IPv4"
	fam["v4-literal"] = "IPv4"
	return fam, n64
}

func TestScoreFixedCLATClientPerfect(t *testing.T) {
	cfg := testMirrorConfig()
	fam, n64 := allIPv6(cfg)
	n64["a-record-v4"] = true
	n64["v4-literal"] = true
	res := Run(synthFetcher(cfg, fam, n64, nil), cfg)
	if s := ScoreFixed(res); s.Points != 10 {
		t.Errorf("CLAT client = %v, want 10/10", s)
	}
}

func TestScoreFixedDualStackCapped(t *testing.T) {
	cfg := testMirrorConfig()
	fam, n64 := allIPv6(cfg) // native v4: nat64 false
	res := Run(synthFetcher(cfg, fam, n64, nil), cfg)
	s := ScoreFixed(res)
	if s.Points != 9 {
		t.Errorf("dual stack = %v, want 9/10", s)
	}
	found := false
	for _, n := range s.Notes {
		if strings.Contains(n, "RFC 8925") {
			found = true
		}
	}
	if !found {
		t.Errorf("missing explanation note: %v", s.Notes)
	}
}

func TestScoreBuggyIgnoresFamily(t *testing.T) {
	cfg := testMirrorConfig()
	fam := map[string]string{}
	for _, n := range SubtestNames {
		fam[n] = "IPv4" // everything reached over IPv4 (poisoned DNS)
	}
	res := Run(synthFetcher(cfg, fam, nil, nil), cfg)
	if s := ScoreBuggy(res); s.Points != 10 {
		t.Errorf("buggy = %v, want the erroneous 10/10", s)
	}
	s := ScoreFixed(res)
	if s.Points != 4 {
		t.Errorf("fixed = %v, want 4/10 (only the two v4 subtests)", s)
	}
	hasPoisonNote := false
	for _, n := range s.Notes {
		if strings.Contains(n, "poisoned") {
			hasPoisonNote = true
		}
	}
	if !hasPoisonNote {
		t.Errorf("fixed score should call out the poisoned A records: %v", s.Notes)
	}
}

func TestScoreZeroWhenAllUnreachable(t *testing.T) {
	cfg := testMirrorConfig()
	fail := map[string]bool{}
	for _, n := range SubtestNames {
		fail[n] = true
	}
	res := Run(synthFetcher(cfg, nil, nil, fail), cfg)
	if s := ScoreBuggy(res); s.Points != 0 {
		t.Errorf("buggy = %v", s)
	}
	if s := ScoreFixed(res); s.Points != 0 {
		t.Errorf("fixed = %v", s)
	}
}

func TestScoreIPv6OnlyNoCLAT(t *testing.T) {
	// An IPv6-only host without CLAT fails the v4 literal but passes
	// everything DNS-based (DNS64 covers the A-only name).
	cfg := testMirrorConfig()
	fam, n64 := allIPv6(cfg)
	n64["a-record-v4"] = true // reached via NAT64 thanks to DNS64
	res := Run(synthFetcher(cfg, fam, n64, map[string]bool{"v4-literal": true}), cfg)
	if s := ScoreFixed(res); s.Points != 8 {
		t.Errorf("v6-only no-CLAT = %v, want 8/10", s)
	}
}

func TestScoreString(t *testing.T) {
	if (Score{Points: 7, Max: 10}).String() != "7/10" {
		t.Error("Score.String wrong")
	}
}

func TestSubtestHostMapping(t *testing.T) {
	want := map[string]string{
		"a-record-v4": "ipv4", "aaaa-record-v6": "ipv6",
		"dual-stack": "ds", "v6-mtu": "mtu6", "v4-literal": "",
	}
	for n, w := range want {
		if got := SubtestHost(n); got != w {
			t.Errorf("SubtestHost(%s) = %q, want %q", n, got, w)
		}
	}
}
