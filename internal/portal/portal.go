// Package portal implements the measurement endpoints the paper's
// testbed redirects clients into: ip6.me (a page that reports the
// client's address family — the final intervention target) and a mirror
// of test-ipv6.com with its 10-point readiness score.
//
// Two scoring logics are provided:
//
//   - ScoreBuggy reproduces the paper's Fig. 5 pathology: each subtest
//     passes if its endpoint simply answered, without validating the
//     address family of the connection. Under wildcard DNS poisoning,
//     the A record for even the IPv6-only test hostname points at the
//     mirror itself, so an IPv4-only client "passes" everything: 10/10.
//   - ScoreFixed is the paper's §VI desired logic: subtests validate
//     the connection family, and a perfect 10/10 is reserved for
//     clients whose IPv4-literal traffic arrived through NAT64 (i.e.
//     RFC 8925/CLAT clients) — natively dual-stack clients cap at 9.
package portal

import (
	"fmt"
	"net/netip"
	"strings"

	"repro/internal/httpsim"
)

// IP6MeBody is the marker the intervention page carries.
const IP6MeBody = "This page shows your IPv4 or IPv6 address"

// IP6MeHandler builds the ip6.me endpoint: it echoes the client's
// address and family, and tells IPv4-only visitors why the internet is
// unavailable (the testbed's graceful notification).
func IP6MeHandler() httpsim.Handler {
	return httpsim.HandlerFunc(func(req *httpsim.Request) *httpsim.Response {
		family := "IPv6"
		hint := "You are connecting with an IPv6 address."
		if req.ClientAddr.Is4() {
			family = "IPv4"
			hint = "You are connecting with an IPv4 address. This network is IPv6-only: " +
				"your device's lack of IPv6 support is why internet access is unavailable. " +
				"Please visit the helpdesk for assistance."
		}
		body := fmt.Sprintf("%s\nfamily=%s\naddr=%s\n%s\n", IP6MeBody, family, req.ClientAddr, hint)
		return &httpsim.Response{Status: 200, Body: []byte(body)}
	})
}

// MirrorConfig describes a test-ipv6.com mirror deployment.
type MirrorConfig struct {
	// Name is the mirror's apex domain (test-ipv6.com in the paper).
	Name string
	// V4 and V6 are the dual-stack mirror addresses.
	V4, V6 netip.Addr
	// V4Only and V6Only are the addresses behind the single-stack test
	// hostnames ipv4.<name> and ipv6.<name>.
	V4Only netip.Addr
	V6Only netip.Addr
	// NAT64PublicV4 is the testbed NAT64's public address; arrivals from
	// it indicate translated (CLAT / v6-only) clients.
	NAT64PublicV4 netip.Addr
}

// MTUProbeSize is the body size of the /mtu/ endpoint — large enough
// that it cannot cross a constrained tunnel (like the testbed's 5G
// link) in a single default-sized segment, so the transfer only
// completes when path MTU discovery works end to end.
const MTUProbeSize = 1800

// MirrorHandler serves the mirror endpoints: /ip/ is a machine-readable
// record of how the client reached it; /mtu/ is the same padded to
// MTUProbeSize bytes (the "Test IPv6 large packet" probe).
func MirrorHandler(cfg MirrorConfig) httpsim.Handler {
	return httpsim.HandlerFunc(func(req *httpsim.Request) *httpsim.Response {
		family := "IPv6"
		if req.ClientAddr.Is4() {
			family = "IPv4"
		}
		nat64 := req.ClientAddr == cfg.NAT64PublicV4
		body := fmt.Sprintf("mirror=%s\nfamily=%s\naddr=%s\nnat64=%v\n", cfg.Name, family, req.ClientAddr, nat64)
		if strings.HasPrefix(req.Path, "/mtu/") {
			pad := MTUProbeSize - len(body)
			if pad > 0 {
				body += strings.Repeat("x", pad)
			}
		}
		return &httpsim.Response{Status: 200, Body: []byte(body)}
	})
}

// SubResult is one subtest outcome.
type SubResult struct {
	Name string
	// Fetched reports HTTP success.
	Fetched bool
	// Family is "IPv4"/"IPv6" as the server observed, "" when unreachable.
	Family string
	// ViaNAT64 reports arrival from the NAT64 public address.
	ViaNAT64 bool
	Err      string
}

// Results is the raw outcome of a full test run.
type Results struct {
	Subs []SubResult
}

// Fetcher abstracts the browsing client (satisfied by a closure over
// hoststack + httpsim so portal stays import-light).
type Fetcher func(url string) (*httpsim.Response, error)

// SubtestNames lists the five subtests in order, mirroring the real
// test-ipv6.com suite: four DNS-name-based probes (the property that
// lets wildcard A poisoning fool the buggy scorer) plus one IPv4
// literal probe ("Test IPv4 without DNS") — the only probe that can
// separate natively dual-stack clients from CLAT clients.
var SubtestNames = []string{"a-record-v4", "aaaa-record-v6", "dual-stack", "v6-mtu", "v4-literal"}

// SubtestHost returns the vhost label a DNS-based subtest probes ("" for
// the literal test).
func SubtestHost(name string) string {
	switch name {
	case "a-record-v4":
		return "ipv4"
	case "aaaa-record-v6":
		return "ipv6"
	case "dual-stack":
		return "ds"
	case "v6-mtu":
		return "mtu6"
	}
	return ""
}

// Run executes the five subtests a mirror visit performs.
func Run(fetch Fetcher, cfg MirrorConfig) *Results {
	var tests []struct {
		name string
		url  string
	}
	for _, n := range SubtestNames {
		var url string
		switch n {
		case "v4-literal":
			url = "http://" + cfg.V4.String() + "/ip/"
		case "v6-mtu":
			url = "http://" + SubtestHost(n) + "." + cfg.Name + "/mtu/"
		default:
			url = "http://" + SubtestHost(n) + "." + cfg.Name + "/ip/"
		}
		tests = append(tests, struct {
			name string
			url  string
		}{n, url})
	}
	res := &Results{}
	for _, tc := range tests {
		sub := SubResult{Name: tc.name}
		resp, err := fetch(tc.url)
		switch {
		case err != nil:
			sub.Err = err.Error()
		case tc.name == "v6-mtu" && len(resp.Body) < MTUProbeSize:
			sub.Err = "short body (MTU black hole?)"
		case resp.Status == 200 && strings.Contains(string(resp.Body), "mirror="+cfg.Name):
			sub.Fetched = true
			sub.Family = fieldValue(string(resp.Body), "family")
			sub.ViaNAT64 = fieldValue(string(resp.Body), "nat64") == "true"
		}
		res.Subs = append(res.Subs, sub)
	}
	return res
}

func fieldValue(body, key string) string {
	for _, line := range strings.Split(body, "\n") {
		if v, ok := strings.CutPrefix(line, key+"="); ok {
			return v
		}
	}
	return ""
}

// OutcomeCode compresses one subtest result into a single diagnostic
// byte, extending the 10-point score with the *way* a subtest passed or
// failed — the detail that lets the pathology catalog tell failure
// modes apart when their point totals tie:
//
//	'N'  fetched, arrived through NAT64 (translated IPv4)
//	'6'  fetched natively over IPv6
//	'4'  fetched natively over IPv4
//	'x'  an HTTP response came back but not from the mirror
//	     (the poisoned-A redirect signature)
//	'm'  mirror reached but the large probe was truncated
//	     (the PTB-black-hole signature)
//	'!'  unreachable: timeout, connection failure or no addresses
func OutcomeCode(s SubResult) byte {
	switch {
	case s.Fetched && s.ViaNAT64:
		return 'N'
	case s.Fetched && s.Family == "IPv6":
		return '6'
	case s.Fetched:
		return '4'
	case s.Err == "":
		return 'x'
	case strings.Contains(s.Err, "short body"):
		return 'm'
	default:
		return '!'
	}
}

// OutcomeCodes renders the per-subtest OutcomeCode bytes in SubtestNames
// order — a five-character connectivity signature like "N66m4".
func (r *Results) OutcomeCodes() string {
	b := make([]byte, len(r.Subs))
	for i, s := range r.Subs {
		b[i] = OutcomeCode(s)
	}
	return string(b)
}

// Score is a 0..10 readiness verdict with explanation.
type Score struct {
	Points int
	Max    int
	Notes  []string
}

// String renders "N/10".
func (s Score) String() string { return fmt.Sprintf("%d/%d", s.Points, s.Max) }

// ScoreBuggy is the SC23-era mirror logic: two points per subtest that
// merely answered. It cannot tell that a "v6" endpoint was reached over
// IPv4 via a poisoned A record — the Fig. 5 erroneous 10/10.
func ScoreBuggy(r *Results) Score {
	s := Score{Max: 10}
	for _, sub := range r.Subs {
		if sub.Fetched {
			s.Points += 2
		} else {
			s.Notes = append(s.Notes, sub.Name+" unreachable")
		}
	}
	return s
}

// ScoreFixed validates each subtest's address family and reserves 10/10
// for clients whose IPv4 path is translated (RFC 8925/CLAT), per the
// paper's §VI lessons.
func ScoreFixed(r *Results) Score {
	s := Score{Max: 10}
	nativeV4 := false
	for _, sub := range r.Subs {
		pass := false
		switch sub.Name {
		case "a-record-v4", "v4-literal":
			pass = sub.Fetched && sub.Family == "IPv4"
			if pass && !sub.ViaNAT64 {
				// Reached the v4 endpoint from a non-NAT64 source: the
				// client still runs a native IPv4 stack.
				nativeV4 = true
			}
		default: // every IPv6 subtest must actually arrive over IPv6
			pass = sub.Fetched && sub.Family == "IPv6"
			if sub.Fetched && sub.Family != "IPv6" {
				s.Notes = append(s.Notes, sub.Name+" reached over IPv4 (poisoned A record?)")
			}
		}
		if pass {
			s.Points += 2
		} else if !sub.Fetched {
			s.Notes = append(s.Notes, sub.Name+" unreachable")
		}
	}
	if s.Points == 10 && nativeV4 {
		s.Points = 9
		s.Notes = append(s.Notes,
			"dual-stack: IPv4 still used natively; only RFC 8925 (option 108) clients score 10/10")
	}
	return s
}
