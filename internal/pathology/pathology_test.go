package pathology

import (
	"errors"
	"strings"
	"sync"
	"testing"

	"repro/internal/testbed"
)

// fingerprintCache computes every registered fingerprint once per test
// binary — Compute builds six worlds per pathology, so the uniqueness,
// pinning and decoder tests share one measurement pass.
var (
	fpOnce sync.Once
	fpAll  map[string]Fingerprint
	fpErr  error
)

func fingerprints(t *testing.T) map[string]Fingerprint {
	t.Helper()
	fpOnce.Do(func() { fpAll, fpErr = ComputeAll() })
	if fpErr != nil {
		t.Fatalf("ComputeAll: %v", fpErr)
	}
	return fpAll
}

func TestRegisterValidation(t *testing.T) {
	install := func(*testbed.Testbed) error { return nil }
	cases := []struct {
		name string
		p    Pathology
		want string
	}{
		{"empty name", Pathology{Source: "s", Mechanism: "m", Install: install}, "empty name"},
		{"missing source", Pathology{Name: "x-test", Mechanism: "m", Install: install}, "required"},
		{"missing mechanism", Pathology{Name: "x-test", Source: "s", Install: install}, "required"},
		{"nil install", Pathology{Name: "x-test", Source: "s", Mechanism: "m"}, "nil Install"},
		{"duplicate", Pathology{Name: None, Source: "s", Mechanism: "m", Install: install}, "already registered"},
	}
	for _, tc := range cases {
		if err := Register(tc.p); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want containing %q", tc.name, err, tc.want)
		}
	}
}

func TestNamesCanonicalOrder(t *testing.T) {
	names := Names()
	if len(names) < 7 {
		t.Fatalf("registered pathologies = %d, want >= 7 (none + 6 failure modes)", len(names))
	}
	if names[0] != None {
		t.Fatalf("Names()[0] = %q, want %q first", names[0], None)
	}
	for i := 2; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Errorf("Names() not sorted after none: %q >= %q", names[i-1], names[i])
		}
	}
	if got, want := len(All()), len(names); got != want {
		t.Errorf("len(All()) = %d, want %d", got, want)
	}
}

func TestApplyUnknown(t *testing.T) {
	tb := testbed.New(testbed.DefaultOptions())
	defer tb.Close()
	if err := Apply(tb, "no-such-pathology"); err == nil || !strings.Contains(err.Error(), "unknown") {
		t.Fatalf("Apply(unknown) = %v, want unknown-name error", err)
	}
}

// TestPathologyFingerprintsUnique is the catalog's core contract: no
// two registered pathologies — the baseline included — share a 10-point
// score vector over the canonical client profiles. The table is
// whatever the registry holds when the test runs, so pathologies added
// later (including example registrations) are checked automatically.
func TestPathologyFingerprintsUnique(t *testing.T) {
	all := fingerprints(t)
	names := Names()
	for i, a := range names {
		for _, b := range names[i+1:] {
			if all[a].Points == all[b].Points {
				t.Errorf("pathologies %q and %q share score vector %v", a, b, all[a].String())
			}
		}
	}
}

// TestPathologyFingerprintsPinned pins the exact measured fingerprint
// of every built-in pathology — points and per-subtest outcome codes.
// A change here means client-visible behavior moved: update
// PATHOLOGIES.md alongside this table.
func TestPathologyFingerprintsPinned(t *testing.T) {
	want := map[string]Fingerprint{
		None: {
			Points: [6]int{10, 9, 9, 9, 2, 8},
			Codes:  [6]string{"N666N", "N6664", "N6664", "N6664", "xxxm4", "N666!"},
		},
		"delegation-no-aaaa": {
			Points: [6]int{2, 2, 2, 2, 2, 0},
			Codes:  [6]string{"!!!!N", "xxxm4", "xxxm4", "xxxm4", "xxxm4", "!!!!!"},
		},
		"dns-v4-interference": {
			Points: [6]int{10, 9, 2, 2, 2, 8},
			Codes:  [6]string{"N666N", "N6664", "xxxm4", "xxxm4", "xxxm4", "N666!"},
		},
		"dns-v6-interference": {
			Points: [6]int{4, 8, 9, 9, 2, 0},
			Codes:  [6]string{"N!N!N", "46464", "N6664", "N6664", "xxxm4", "!!!!!"},
		},
		"dns64-prefix-mismatch": {
			Points: [6]int{10, 9, 8, 8, 2, 6},
			Codes:  [6]string{"N666N", "46664", "x6664", "x6664", "xxxm4", "!666!"},
		},
		"nat64-checksum-corruption": {
			Points: [6]int{6, 9, 8, 8, 2, 6},
			Codes:  [6]string{"!666!", "46664", "x6664", "x6664", "xxxm4", "!666!"},
		},
		"nat64-mtu-blackhole": {
			Points: [6]int{8, 8, 8, 8, 2, 6},
			Codes:  [6]string{"N66!N", "N66!4", "N66m4", "N66m4", "xxxm4", "N66!!"},
		},
		// The stateful pathologies: each plain fingerprint samples the
		// grid-aligned probe instant with the failure active (flap
		// down-windows cover the aligned phase by construction).
		"nat64-port-exhaustion": {
			Points: [6]int{8, 9, 9, 9, 2, 8},
			Codes:  [6]string{"N666!", "N6664", "N6664", "N6664", "xxxm4", "N666!"},
		},
		"dns64-flapping": {
			Points: [6]int{10, 9, 8, 8, 2, 8},
			Codes:  [6]string{"N666N", "46664", "x6664", "x6664", "xxxm4", "N666!"},
		},
		"gateway-ra-outage": {
			Points: [6]int{0, 2, 2, 2, 2, 0},
			Codes:  [6]string{"!!!!!", "xxxm4", "xxxm4", "xxxm4", "xxxm4", "!!!!!"},
		},
	}
	all := fingerprints(t)
	for name, w := range want {
		got, ok := all[name]
		if !ok {
			t.Errorf("pathology %q not registered", name)
			continue
		}
		if got != w {
			t.Errorf("%s fingerprint drifted:\n got points=%v codes=%v\nwant points=%v codes=%v",
				name, got.String(), got.Codes, w.String(), w.Codes)
		}
	}
}

// TestDecoderRoundTrip proves the score-vector → pathology direction:
// every registered fingerprint decodes back to its own name, and a
// vector no pathology produces returns the named sentinel error.
func TestDecoderRoundTrip(t *testing.T) {
	d, err := NewDecoder()
	if err != nil {
		t.Fatalf("NewDecoder: %v", err)
	}
	all := fingerprints(t)
	for _, name := range Names() {
		got, err := d.Decode(all[name].Points)
		if err != nil || got != name {
			t.Errorf("Decode(%v) = %q, %v; want %q", all[name].String(), got, err, name)
		}
	}
	if name, err := d.Decode([6]int{1, 1, 1, 1, 1, 1}); !errors.Is(err, ErrUnknownVector) {
		t.Errorf("Decode(bogus) = %q, %v; want ErrUnknownVector", name, err)
	}
}

// TestDecodeUnknownVectorSentinel is the regression for the silent-miss
// hazard: an all-zero vector — what an operator measures when the probe
// suite itself failed — must return ErrUnknownVector, never decode to
// the "none" control (which would read as "network healthy").
func TestDecodeUnknownVectorSentinel(t *testing.T) {
	d, err := NewDecoder()
	if err != nil {
		t.Fatalf("NewDecoder: %v", err)
	}
	name, err := d.Decode([6]int{})
	if !errors.Is(err, ErrUnknownVector) {
		t.Fatalf("Decode(all-zero) = %q, %v; want ErrUnknownVector", name, err)
	}
	if name != "" {
		t.Fatalf("Decode(all-zero) name = %q, want empty", name)
	}
}

// TestInstallLeavesDistinctComponentMarks spot-checks that each install
// actually lands on the component it documents, via the counters the
// components expose.
func TestInstallLeavesDistinctComponentMarks(t *testing.T) {
	tb := testbed.New(testbed.DefaultOptions())
	defer tb.Close()
	if err := Apply(tb, "dns64-prefix-mismatch"); err != nil {
		t.Fatal(err)
	}
	if tb.Healthy64.Prefix != MismatchedPrefix {
		t.Errorf("dns64 prefix = %v, want %v", tb.Healthy64.Prefix, MismatchedPrefix)
	}
	if err := Apply(tb, "nat64-checksum-corruption"); err != nil {
		t.Fatal(err)
	}
	if !tb.Gateway.NAT64.CorruptChecksums {
		t.Error("nat64 checksum corruption not armed")
	}
}
