package pathology

import (
	"strings"
	"sync"
	"testing"
)

// statefulNames is the canonical stateful built-in set, in Names order.
var statefulNames = []string{"dns64-flapping", "gateway-ra-outage", "nat64-port-exhaustion"}

// timelineCache computes each stateful timeline once per test binary
// (18 worlds and ~10 virtual minutes each).
var (
	tlOnce sync.Once
	tlAll  map[string]Timeline
	tlErr  error
)

func timelines(t *testing.T) map[string]Timeline {
	t.Helper()
	tlOnce.Do(func() {
		tlAll = make(map[string]Timeline, len(statefulNames))
		for _, name := range statefulNames {
			var tl Timeline
			if tl, tlErr = ComputeTimeline(name); tlErr != nil {
				return
			}
			tlAll[name] = tl
		}
	})
	if tlErr != nil {
		t.Fatalf("ComputeTimeline: %v", tlErr)
	}
	return tlAll
}

// TestComputeTimelinePinned pins the phase-tagged fingerprints of every
// stateful built-in. A drift here means the lifecycle behavior moved:
// update PATHOLOGIES.md alongside this table.
func TestComputeTimelinePinned(t *testing.T) {
	want := map[string]string{
		"nat64-port-exhaustion": "pre=10/9/9/9/2/8 active=8/9/9/9/2/8 recovered=10/9/9/9/2/8",
		"dns64-flapping":        "pre=10/9/9/9/2/8 active=10/9/8/8/2/8 recovered=10/9/9/9/2/8",
		"gateway-ra-outage":     "pre=10/9/9/9/2/8 active=0/4/2/2/2/0 recovered=10/9/9/9/2/8",
	}
	all := timelines(t)
	for name, w := range want {
		if got := all[name].String(); got != w {
			t.Errorf("%s timeline drifted:\n got %s\nwant %s", name, got, w)
		}
	}
}

// TestTimelinePhasesDistinct is the recovery contract: the active
// vector must differ from both quiet phases (the failure is visible),
// the recovered vector must equal the pre-onset one (recovery leaves no
// scar — sessions expired, routes re-learned, caches drained), and the
// active vectors of different pathologies must stay pairwise unique so
// a phase-tagged measurement still decodes to one failure mode.
func TestTimelinePhasesDistinct(t *testing.T) {
	all := timelines(t)
	for name, tl := range all {
		if tl.Active.Points == tl.PreOnset.Points {
			t.Errorf("%s: active phase invisible (= pre-onset %v)", name, tl.Active.String())
		}
		if tl.Active.Points == tl.Recovered.Points {
			t.Errorf("%s: no recovery (active = recovered %v)", name, tl.Active.String())
		}
		if tl.Recovered.Points != tl.PreOnset.Points {
			t.Errorf("%s: recovery left a scar: pre=%v recovered=%v",
				name, tl.PreOnset.String(), tl.Recovered.String())
		}
	}
	for i, a := range statefulNames {
		for _, b := range statefulNames[i+1:] {
			if all[a].Active.Points == all[b].Active.Points {
				t.Errorf("active vectors collide: %q and %q share %v", a, b, all[a].Active.String())
			}
		}
	}
}

// TestComputeTimelineErrors pins the failure modes: unknown names and
// stateless pathologies (which have no lifecycle to sample).
func TestComputeTimelineErrors(t *testing.T) {
	if _, err := ComputeTimeline("no-such-pathology"); err == nil || !strings.Contains(err.Error(), "unknown") {
		t.Errorf("ComputeTimeline(unknown) = %v, want unknown-name error", err)
	}
	if _, err := ComputeTimeline("nat64-checksum-corruption"); err == nil || !strings.Contains(err.Error(), "stateless") {
		t.Errorf("ComputeTimeline(stateless) = %v, want stateless error", err)
	}
}
