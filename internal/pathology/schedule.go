package pathology

import (
	"fmt"
	"time"

	"repro/internal/netsim"
)

// beaconGrid is the scenario engine's trial-alignment grid: the 10 s RA
// beacon cadence every trial start snaps to. A stateful schedule's flap
// pattern must be commensurable with this grid (FlapEvery dividing it,
// or a multiple of it) so that every grid-aligned trial observes the
// same schedule phase — the precondition for serial ≡ sharded equality
// with a flapping pathology active.
const beaconGrid = 10 * time.Second

// Schedule describes the lifecycle of a stateful pathology in virtual
// time: an onset delay before the failure activates, an active-phase
// length after which it recovers, and an optional flap pattern that
// makes the failure intermittent while active. The flap down-window's
// position inside each period is drawn once, at arm time, from the
// repo's seeded splitmix64 stream — the same PRNG family behind
// netsim.Impairment — so the pattern is identical in every world built
// from the same spec.
//
// The zero Schedule is "permanently active from install": Down() is
// true forever once armed. Registered pathologies must keep Onset and
// Active zero (a mid-run onset measured from install time would differ
// between a serial world and a shard world, breaking position
// independence); ComputeTimeline overrides them with canonical probe
// windows on fresh single-probe worlds, where absolute time is private
// to the measurement.
type Schedule struct {
	// Onset is the delay from arm (install) time until the failure
	// activates. Must be zero on registered pathologies.
	Onset time.Duration
	// Active is the active-phase length; after Onset+Active the failure
	// recovers for good. Zero means the failure never recovers on its
	// own. Must be zero on registered pathologies.
	Active time.Duration
	// FlapEvery is the flap period while active: each period contains
	// one FlapDown-long outage window. Zero means the failure is solid
	// for the whole active phase. Must divide the 10 s beacon grid or be
	// a multiple of it.
	FlapEvery time.Duration
	// FlapDown is the outage-window length inside each flap period.
	FlapDown time.Duration
	// Seed selects the splitmix64 stream that positions the down-window
	// inside the period; ScheduleSeed derives one from a pathology name.
	Seed uint64
}

// ScheduleSeed derives a schedule's PRNG seed from a pathology name
// with the same FNV-1a + splitmix64-finalizer recipe the testbed uses
// for per-client chaos seeds, so the flap pattern is a pure function of
// the name.
func ScheduleSeed(name string) uint64 {
	h := uint64(0xcbf29ce484222325)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 0x100000001b3
	}
	z := h + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// splitmix64 is the repo's standard tiny deterministic PRNG (identical
// to netsim's unexported copy); schedules use it to place the flap
// down-window.
type splitmix64 struct{ state uint64 }

func (s *splitmix64) next() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Stateful reports whether the schedule carries any lifecycle at all.
func (s Schedule) Stateful() bool { return s != (Schedule{}) }

// AlignPeriod is the trial-alignment period a world running this
// schedule needs: the beacon grid itself, or the flap period when it is
// a multiple of the grid. Trials aligned to this period always observe
// the same schedule phase.
func (s Schedule) AlignPeriod() time.Duration {
	if s.FlapEvery > beaconGrid {
		return s.FlapEvery
	}
	return beaconGrid
}

// validate checks the flap pattern's internal consistency and its
// commensurability with the beacon grid.
func (s Schedule) validate() error {
	if s.FlapEvery < 0 || s.FlapDown < 0 || s.Onset < 0 || s.Active < 0 {
		return fmt.Errorf("pathology: negative schedule durations")
	}
	if s.FlapEvery == 0 {
		if s.FlapDown != 0 {
			return fmt.Errorf("pathology: FlapDown without FlapEvery")
		}
		return nil
	}
	if s.FlapDown <= 0 || s.FlapDown >= s.FlapEvery {
		return fmt.Errorf("pathology: FlapDown %v must be inside (0, FlapEvery %v)", s.FlapDown, s.FlapEvery)
	}
	if beaconGrid%s.FlapEvery != 0 && s.FlapEvery%beaconGrid != 0 {
		return fmt.Errorf("pathology: FlapEvery %v is incommensurable with the %v beacon grid", s.FlapEvery, beaconGrid)
	}
	return nil
}

// shardSafe reports whether the schedule may be registered: only
// grid-commensurable flap patterns with zero Onset/Active phases keep a
// trial's view of the schedule independent of its position in the run.
func (s Schedule) shardSafe() bool {
	return s.Onset == 0 && s.Active == 0 && s.validate() == nil
}

// Gate is an armed Schedule on one world's virtual clock. Mechanisms
// poll Down at decision points (should this RA be suppressed? should
// this AAAA go unsynthesized?); phase transitions additionally fire as
// deterministic netsim timer events for hooks registered with
// OnTransition (a quota that switches on at onset and off at recovery).
type Gate struct {
	sched  Schedule
	now    func() time.Time
	armed  time.Time
	anchor time.Time
	offset time.Duration
	hooks  []func(active bool)
}

// Arm installs the schedule on a world clock: it draws the flap
// down-window offset from the seeded splitmix64 stream and schedules
// the onset/recovery transitions as virtual-time events. The flap
// pattern is anchored to the absolute alignment grid (all worlds share
// one clock epoch), so two worlds armed at different build instants
// still agree on which wall instants are down — the property fabric
// subtree worlds need.
func (s Schedule) Arm(clk *netsim.Clock) *Gate {
	g := &Gate{sched: s, now: clk.Now, armed: clk.Now()}
	// Anchor to the alignment grid in Unix time — the same arithmetic
	// the scenario engine's trial aligner uses — so an aligned trial
	// start always sits at flap phase zero.
	g.anchor = g.armed.Add(-time.Duration(g.armed.UnixNano() % int64(s.AlignPeriod())))
	if span := s.FlapEvery - s.FlapDown; span > 0 {
		prng := splitmix64{state: s.Seed}
		// Quantize the offset to 100 ms slots: coarse enough to document,
		// fine enough that patterns with different seeds rarely collide.
		const slot = 100 * time.Millisecond
		slots := uint64(span/slot) + 1
		g.offset = time.Duration(prng.next()%slots) * slot
	}
	if s.Onset > 0 {
		clk.AfterFunc(s.Onset, func() { g.fire(true) })
	}
	if s.Active > 0 {
		clk.AfterFunc(s.Onset+s.Active, func() { g.fire(false) })
	}
	return g
}

// OnTransition registers fn to run at the onset and recovery events;
// it is invoked immediately with the current phase state so installs
// running after onset (the registered Onset=0 case) start correct.
func (g *Gate) OnTransition(fn func(active bool)) {
	g.hooks = append(g.hooks, fn)
	fn(g.phaseActive())
}

func (g *Gate) fire(active bool) {
	for _, fn := range g.hooks {
		fn(active)
	}
}

// phaseActive reports whether virtual time sits inside the active phase
// (ignoring the flap pattern).
func (g *Gate) phaseActive() bool {
	el := g.now().Sub(g.armed)
	if el < g.sched.Onset {
		return false
	}
	return g.sched.Active == 0 || el < g.sched.Onset+g.sched.Active
}

// Down reports whether the failure is biting right now: inside the
// active phase and — when a flap pattern is set — inside the current
// period's down-window. It is a pure function of virtual time, so
// polling callers need no event ordering guarantees.
func (g *Gate) Down() bool {
	if !g.phaseActive() {
		return false
	}
	if g.sched.FlapEvery == 0 {
		return true
	}
	ph := g.now().Sub(g.anchor) % g.sched.FlapEvery
	return ph >= g.offset && ph < g.offset+g.sched.FlapDown
}
