package pathology

import (
	"errors"
	"math/bits"
	"reflect"
	"testing"
)

// TestDecodePartialAllSubsets checks DecodePartial against a brute-force
// reference for every measured-profile subset of size >= 2 (57 masks)
// and every registered pathology: the ambiguity set must be exactly the
// registered pathologies agreeing on the measured positions, in Names()
// order, and must always contain the true name.
func TestDecodePartialAllSubsets(t *testing.T) {
	d, err := NewDecoder()
	if err != nil {
		t.Fatalf("NewDecoder: %v", err)
	}
	all := fingerprints(t)
	names := Names()
	for mask := 0; mask < 1<<NumFingerprintProfiles; mask++ {
		if bits.OnesCount(uint(mask)) < 2 {
			continue
		}
		var measured [NumFingerprintProfiles]bool
		for j := 0; j < NumFingerprintProfiles; j++ {
			measured[j] = mask&(1<<j) != 0
		}
		for _, name := range names {
			got, err := d.DecodePartial(all[name].Points, measured)
			if err != nil {
				t.Fatalf("DecodePartial(%s, mask=%06b): %v", name, mask, err)
			}
			var want []string
			for _, cand := range names {
				match := true
				for j := 0; j < NumFingerprintProfiles; j++ {
					if measured[j] && all[cand].Points[j] != all[name].Points[j] {
						match = false
						break
					}
				}
				if match {
					want = append(want, cand)
				}
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("DecodePartial(%s, mask=%06b) = %v, want %v", name, mask, got, want)
			}
		}
	}
}

// TestDecodePartialErrors pins the two failure modes: fewer than two
// measured profiles, and a partial vector no pathology produces.
func TestDecodePartialErrors(t *testing.T) {
	d, err := NewDecoder()
	if err != nil {
		t.Fatalf("NewDecoder: %v", err)
	}
	for _, measured := range [][NumFingerprintProfiles]bool{
		{},
		{false, false, true, false, false, false},
	} {
		if got, err := d.DecodePartial([6]int{10, 9, 9, 9, 2, 8}, measured); !errors.Is(err, ErrTooFewMeasured) {
			t.Errorf("DecodePartial(measured=%v) = %v, %v; want ErrTooFewMeasured", measured, got, err)
		}
	}
	// No registered pathology scores 99 points anywhere.
	impossible := [6]int{99, 99, 0, 0, 0, 0}
	if got, err := d.DecodePartial(impossible, [6]bool{true, true, false, false, false, false}); !errors.Is(err, ErrUnknownVector) {
		t.Errorf("DecodePartial(impossible) = %v, %v; want ErrUnknownVector", got, err)
	}
}
