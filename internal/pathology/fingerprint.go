package pathology

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/hoststack"
	"repro/internal/httpsim"
	"repro/internal/portal"
	"repro/internal/profiles"
	"repro/internal/testbed"
)

// FingerprintProfiles returns the canonical client set a fingerprint is
// measured over, in fixed order. The six profiles span every resolver
// and translation posture the testbed distinguishes: RFC 8925+CLAT,
// RDNSS-preferring dual stack, IPv4-DNS-preferring dual stack,
// IPv4-transport-DNS dual stack, IPv4-only, and IPv6-only.
func FingerprintProfiles() []hoststack.Behavior {
	return []hoststack.Behavior{
		profiles.MacOS(),
		profiles.Windows10(),
		profiles.Windows11(),
		profiles.WindowsXP(),
		profiles.NintendoSwitch(),
		profiles.IPv6OnlyLinux(),
	}
}

// NumFingerprintProfiles is len(FingerprintProfiles()), the width of a
// fingerprint vector.
const NumFingerprintProfiles = 6

// Fingerprint is a pathology's signature on the mirror: the fixed
// 10-point score each canonical profile earns in a freshly built world
// with the pathology installed, plus the per-subtest outcome codes
// (portal.OutcomeCode) that explain *how* each score came about.
type Fingerprint struct {
	// Points holds portal.ScoreFixed points per FingerprintProfiles
	// entry — the vector the Decoder keys on.
	Points [NumFingerprintProfiles]int
	// Codes holds the five-character portal outcome signature per
	// profile, the diagnostic detail behind the points.
	Codes [NumFingerprintProfiles]string
}

// String renders the score vector, e.g. "10/9/9/9/2/8".
func (f Fingerprint) String() string {
	parts := make([]string, len(f.Points))
	for i, p := range f.Points {
		parts[i] = fmt.Sprintf("%d", p)
	}
	return strings.Join(parts, "/")
}

// Compute measures the named pathology's fingerprint: one default-world
// testbed per canonical profile, pathology installed before the client
// joins, then a full mirror run scored with the fixed (family-
// validating) logic. Everything runs on the virtual clock, so the
// result is deterministic. Stateful pathologies record an AlignPeriod
// on the testbed; the probe client's join is aligned to that grid —
// the same protocol the scenario engine applies to trials — so the
// fingerprint samples the identical schedule phase a sweep trial does.
func Compute(name string) (Fingerprint, error) {
	var f Fingerprint
	for i, prof := range FingerprintProfiles() {
		tb := testbed.New(testbed.DefaultOptions())
		if err := Apply(tb, name); err != nil {
			tb.Close()
			return f, err
		}
		alignToGrid(tb)
		c := tb.AddClient("probe", prof)
		res := portal.Run(func(url string) (*httpsim.Response, error) {
			r, err := httpsim.Browse(c, url)
			if err != nil {
				return nil, err
			}
			return r.Response, nil
		}, tb.Mirror)
		f.Points[i] = portal.ScoreFixed(res).Points
		f.Codes[i] = res.OutcomeCodes()
		tb.Close()
	}
	return f, nil
}

// alignToGrid advances a world to the next AlignPeriod boundary (Unix
// arithmetic, matching the scenario trial aligner) so probes sample the
// schedule phase every grid-aligned trial samples. Worlds without an
// AlignPeriod — every stateless pathology — are untouched.
func alignToGrid(tb *testbed.Testbed) {
	if tb.AlignPeriod <= 0 {
		return
	}
	if rem := time.Duration(tb.Net.Clock.Now().UnixNano()) % tb.AlignPeriod; rem != 0 {
		tb.Net.RunFor(tb.AlignPeriod - rem)
	}
}

// ComputeAll measures every registered pathology, keyed by name.
func ComputeAll() (map[string]Fingerprint, error) {
	out := make(map[string]Fingerprint, len(registry))
	for _, name := range Names() {
		f, err := Compute(name)
		if err != nil {
			return nil, fmt.Errorf("pathology %q: %w", name, err)
		}
		out[name] = f
	}
	return out, nil
}

// ErrUnknownVector is returned by Decode and DecodePartial when the
// observed score vector matches no registered pathology — including the
// all-zero vector, which is what an operator measures when the probes
// themselves failed to run. Returning a named error instead of the
// "none" control keeps a broken measurement from reading as a healthy
// network.
var ErrUnknownVector = fmt.Errorf("pathology: score vector matches no registered fingerprint")

// ErrTooFewMeasured is returned by DecodePartial when fewer than two
// profiles were measured: a single score is shared by too many
// pathologies to even bound the ambiguity set usefully.
var ErrTooFewMeasured = fmt.Errorf("pathology: need at least two measured profiles to decode")

// Decoder maps an observed score vector back to the pathology that
// produces it — the operator-facing payoff of fingerprint uniqueness:
// run the five subtests against the canonical profiles, look the vector
// up, and the catalog names the failure mode.
type Decoder struct {
	byVector map[[NumFingerprintProfiles]int]string
	// byName keeps the full fingerprints in Names() order for partial-
	// vector matching.
	names  []string
	points [][NumFingerprintProfiles]int
}

// NewDecoder measures every registered pathology and builds the lookup
// table. It fails if two pathologies share a score vector, so holding a
// Decoder is itself proof of fingerprint uniqueness.
func NewDecoder() (*Decoder, error) {
	all, err := ComputeAll()
	if err != nil {
		return nil, err
	}
	d := &Decoder{byVector: make(map[[NumFingerprintProfiles]int]string, len(all))}
	for _, name := range Names() {
		f := all[name]
		if prev, dup := d.byVector[f.Points]; dup {
			return nil, fmt.Errorf("pathology: %q and %q share fingerprint %v", prev, name, f)
		}
		d.byVector[f.Points] = name
		d.names = append(d.names, name)
		d.points = append(d.points, f.Points)
	}
	return d, nil
}

// Decode returns the pathology whose fingerprint matches the observed
// score vector, or ErrUnknownVector when nothing does (the all-zero
// vector of a failed measurement included).
func (d *Decoder) Decode(points [NumFingerprintProfiles]int) (string, error) {
	name, ok := d.byVector[points]
	if !ok {
		return "", ErrUnknownVector
	}
	return name, nil
}

// DecodePartial decodes a vector in which only some profiles were
// measured (measured[i] false means points[i] is unknown). It returns
// every registered pathology consistent with the measured positions, in
// Names() order — an explicit ambiguity set rather than a wrong answer.
// A single-name set is a confident decode; an empty set is
// ErrUnknownVector. Fewer than two measured profiles is
// ErrTooFewMeasured.
func (d *Decoder) DecodePartial(points [NumFingerprintProfiles]int, measured [NumFingerprintProfiles]bool) ([]string, error) {
	n := 0
	for _, m := range measured {
		if m {
			n++
		}
	}
	if n < 2 {
		return nil, ErrTooFewMeasured
	}
	var out []string
	for i, name := range d.names {
		match := true
		for j, m := range measured {
			if m && d.points[i][j] != points[j] {
				match = false
				break
			}
		}
		if match {
			out = append(out, name)
		}
	}
	if len(out) == 0 {
		return nil, ErrUnknownVector
	}
	return out, nil
}
