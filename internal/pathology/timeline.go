package pathology

import (
	"fmt"
	"time"

	"repro/internal/httpsim"
	"repro/internal/portal"
	"repro/internal/testbed"
)

// Canonical probe windows for ComputeTimeline: the pathology's own flap
// pattern is kept, but Onset/Active are overridden so one run observes
// all three lifecycle phases. The active probe lands one full slack
// after onset — 70 s, an instant on the 10 s beacon grid, so it sits at
// flap phase zero for grid-dividing periods and inside the down-window
// for grid-multiple ones, and decayed router lifetimes have expired.
const (
	timelineOnset  = 60 * time.Second
	timelineActive = 120 * time.Second
	timelineSlack  = 10 * time.Second
)

// Timeline is a stateful pathology's fingerprint sampled across its
// lifecycle: before onset (healthy baseline), inside the active phase
// (the failure biting), and after recovery. A recovered vector equal to
// the pre-onset one is itself diagnostic — the failure left no scar —
// while the active vector is what distinguishes pathologies from each
// other.
type Timeline struct {
	PreOnset  Fingerprint
	Active    Fingerprint
	Recovered Fingerprint
}

// String renders the three phase vectors, e.g.
// "pre=10/9/9/9/2/8 active=2/2/2/2/2/0 recovered=10/9/9/9/2/8".
func (t Timeline) String() string {
	return fmt.Sprintf("pre=%s active=%s recovered=%s", t.PreOnset, t.Active, t.Recovered)
}

// ComputeTimeline measures the named stateful pathology's phase-tagged
// fingerprints: one world per canonical profile, the pathology armed
// with its flap pattern but the canonical Onset/Active probe windows,
// and the *same* client probed in all three phases — so the recovered
// vector reflects genuine recovery of accumulated state (expired
// sessions, re-learned routes), not a fresh world. Budgets are not
// applied: the pool sizing is a sharding concern, and the timeline
// isolates the schedule's effect. Stateless pathologies have no
// timeline; use Compute.
func ComputeTimeline(name string) (Timeline, error) {
	var tl Timeline
	p, ok := registry[name]
	if !ok {
		return tl, fmt.Errorf("pathology: unknown %q (have %v)", name, Names())
	}
	if !p.Stateful() {
		return tl, fmt.Errorf("pathology %q: stateless pathologies have no timeline; use Compute", name)
	}
	sched := p.Schedule
	sched.Onset = timelineOnset
	sched.Active = timelineActive
	for i, prof := range FingerprintProfiles() {
		tb := testbed.New(testbed.DefaultOptions())
		if err := installWith(tb, p, sched); err != nil {
			tb.Close()
			return tl, err
		}
		// Probe instants are scheduled off the aligned grid instant, not
		// raw arm time: build costs a little virtual time, and only
		// grid instants are guaranteed to sit inside flap down-windows.
		alignToGrid(tb)
		aligned := tb.Net.Clock.Now()
		c := tb.AddClient("probe", prof)
		probe := func(f *Fingerprint) {
			res := portal.Run(func(url string) (*httpsim.Response, error) {
				r, err := httpsim.Browse(c, url)
				if err != nil {
					return nil, err
				}
				return r.Response, nil
			}, tb.Mirror)
			f.Points[i] = portal.ScoreFixed(res).Points
			f.Codes[i] = res.OutcomeCodes()
		}
		runTo := func(target time.Time) {
			if d := target.Sub(tb.Net.Clock.Now()); d > 0 {
				tb.Net.RunFor(d)
			}
		}
		probe(&tl.PreOnset)
		runTo(aligned.Add(timelineOnset + timelineSlack))
		probe(&tl.Active)
		runTo(aligned.Add(timelineOnset + timelineActive + timelineSlack))
		probe(&tl.Recovered)
		tb.Close()
	}
	return tl, nil
}
