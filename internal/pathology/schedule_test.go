package pathology

import (
	"strings"
	"testing"
	"time"

	"repro/internal/netsim"
	"repro/internal/testbed"
)

func TestScheduleSeedDeterministic(t *testing.T) {
	if ScheduleSeed("dns64-flapping") != ScheduleSeed("dns64-flapping") {
		t.Fatal("ScheduleSeed not deterministic")
	}
	if ScheduleSeed("dns64-flapping") == ScheduleSeed("gateway-ra-outage") {
		t.Fatal("ScheduleSeed collides across names")
	}
}

func TestScheduleValidate(t *testing.T) {
	cases := []struct {
		name string
		s    Schedule
		want string // substring of the error, "" for valid
	}{
		{"zero", Schedule{}, ""},
		{"onset only", Schedule{Onset: time.Second}, ""},
		{"solid active", Schedule{Onset: time.Second, Active: time.Minute}, ""},
		{"grid-dividing flap", Schedule{FlapEvery: 2 * time.Second, FlapDown: 900 * time.Millisecond}, ""},
		{"grid-multiple flap", Schedule{FlapEvery: 30 * time.Second, FlapDown: 21200 * time.Millisecond}, ""},
		{"negative onset", Schedule{Onset: -time.Second}, "negative"},
		{"negative flap", Schedule{FlapEvery: -time.Second}, "negative"},
		{"down without period", Schedule{FlapDown: time.Second}, "FlapDown without FlapEvery"},
		{"down too long", Schedule{FlapEvery: 2 * time.Second, FlapDown: 2 * time.Second}, "inside"},
		{"down zero", Schedule{FlapEvery: 2 * time.Second}, "inside"},
		{"incommensurable", Schedule{FlapEvery: 3 * time.Second, FlapDown: time.Second}, "incommensurable"},
		{"incommensurable multiple", Schedule{FlapEvery: 25 * time.Second, FlapDown: time.Second}, "incommensurable"},
	}
	for _, tc := range cases {
		err := tc.s.validate()
		if tc.want == "" {
			if err != nil {
				t.Errorf("%s: validate() = %v, want nil", tc.name, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: validate() = %v, want containing %q", tc.name, err, tc.want)
		}
	}
}

func TestScheduleAlignPeriod(t *testing.T) {
	cases := []struct {
		s    Schedule
		want time.Duration
	}{
		{Schedule{}, 10 * time.Second},
		{Schedule{FlapEvery: 2 * time.Second, FlapDown: time.Second}, 10 * time.Second},
		{Schedule{FlapEvery: 30 * time.Second, FlapDown: time.Second}, 30 * time.Second},
	}
	for _, tc := range cases {
		if got := tc.s.AlignPeriod(); got != tc.want {
			t.Errorf("AlignPeriod(%+v) = %v, want %v", tc.s, got, tc.want)
		}
	}
}

// TestRegisterStatefulValidation checks the stateful registration
// contract: ScheduleDoc required, only shard-safe schedules accepted,
// and exactly one install flavor.
func TestRegisterStatefulValidation(t *testing.T) {
	gated := func(*testbed.Testbed, *Gate) error { return nil }
	install := func(*testbed.Testbed) error { return nil }
	cases := []struct {
		name string
		p    Pathology
		want string
	}{
		{"missing ScheduleDoc", Pathology{Name: "x-stateful", Source: "s", Mechanism: "m",
			InstallGated: gated}, "ScheduleDoc"},
		{"both installs", Pathology{Name: "x-both", Source: "s", Mechanism: "m",
			Install: install, InstallGated: gated, ScheduleDoc: "d"}, "mutually exclusive"},
		{"onset not shard-safe", Pathology{Name: "x-onset", Source: "s", Mechanism: "m",
			InstallGated: gated, ScheduleDoc: "d",
			Schedule: Schedule{Onset: time.Minute}}, "Onset and Active zero"},
		{"active not shard-safe", Pathology{Name: "x-active", Source: "s", Mechanism: "m",
			InstallGated: gated, ScheduleDoc: "d",
			Schedule: Schedule{Active: time.Minute}}, "Onset and Active zero"},
		{"invalid flap", Pathology{Name: "x-flap", Source: "s", Mechanism: "m",
			InstallGated: gated, ScheduleDoc: "d",
			Schedule: Schedule{FlapEvery: 3 * time.Second, FlapDown: time.Second}}, "incommensurable"},
		{"budget without doc", Pathology{Name: "x-budget", Source: "s", Mechanism: "m",
			Install: install,
			Budget:  func(*testbed.Testbed, int) error { return nil }}, "ScheduleDoc"},
	}
	for _, tc := range cases {
		if err := Register(tc.p); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: Register = %v, want containing %q", tc.name, err, tc.want)
		}
	}
}

// TestGateZeroSchedule checks "permanently active from install": the
// zero Schedule's gate is down from arm time onward, and OnTransition
// hooks learn the active state immediately.
func TestGateZeroSchedule(t *testing.T) {
	clk := netsim.NewClock()
	g := Schedule{}.Arm(clk)
	if !g.Down() {
		t.Fatal("zero schedule not down at arm time")
	}
	var state bool
	g.OnTransition(func(active bool) { state = active })
	if !state {
		t.Fatal("OnTransition not invoked immediately with active state")
	}
}

// TestGateOnsetRecovery drives a gate through its lifecycle on a world
// clock: inactive before onset, down during the active window, and
// recovered for good after it — with the transition hook firing at both
// edges as deterministic timer events.
func TestGateOnsetRecovery(t *testing.T) {
	tb := testbed.New(testbed.DefaultOptions())
	defer tb.Close()
	clk := tb.Net.Clock
	g := Schedule{Onset: 5 * time.Second, Active: 10 * time.Second}.Arm(clk)
	var transitions []bool
	g.OnTransition(func(active bool) { transitions = append(transitions, active) })

	if g.Down() {
		t.Fatal("down before onset")
	}
	tb.Net.RunFor(6 * time.Second) // inside the active window
	if !g.Down() {
		t.Fatal("not down inside the active window")
	}
	tb.Net.RunFor(10 * time.Second) // past onset+active
	if g.Down() {
		t.Fatal("still down after recovery")
	}
	want := []bool{false, true, false} // immediate invoke, onset, recovery
	if len(transitions) != len(want) {
		t.Fatalf("transitions = %v, want %v", transitions, want)
	}
	for i := range want {
		if transitions[i] != want[i] {
			t.Fatalf("transitions = %v, want %v", transitions, want)
		}
	}
}

// TestGateFlapAnchoredToGrid checks the anchor contract that makes
// serial ≡ sharded hold under flapping: the down-window pattern is a
// function of absolute grid time, not of arm time, so two gates armed
// at different instants agree on which wall instants are down.
func TestGateFlapAnchoredToGrid(t *testing.T) {
	sched := Schedule{FlapEvery: 2 * time.Second, FlapDown: 900 * time.Millisecond,
		Seed: ScheduleSeed("dns64-flapping")}

	tb := testbed.New(testbed.DefaultOptions())
	defer tb.Close()
	early := sched.Arm(tb.Net.Clock)
	tb.Net.RunFor(3700 * time.Millisecond) // mid-period, mid-window arm point
	late := sched.Arm(tb.Net.Clock)

	// Sample both gates at 100 ms steps across two periods: they must
	// agree everywhere, and the pattern must show one 900 ms down-window
	// per 2 s period.
	downs := 0
	for i := 0; i < 40; i++ {
		e, l := early.Down(), late.Down()
		if e != l {
			t.Fatalf("step %d: gates disagree (early=%v late=%v)", i, e, l)
		}
		if e {
			downs++
		}
		tb.Net.RunFor(100 * time.Millisecond)
	}
	if downs != 2*9 {
		t.Fatalf("down samples = %d over two periods, want 18 (2 × 900 ms at 100 ms steps)", downs)
	}
}

// TestGateRegisteredOffsetsCoverGridPhase pins the seed-engineered
// property the fingerprint tables rely on: both registered flapping
// schedules draw offset zero, so a grid-aligned instant (phase 0) sits
// inside the down-window.
func TestGateRegisteredOffsetsCoverGridPhase(t *testing.T) {
	for _, name := range []string{"dns64-flapping", "gateway-ra-outage"} {
		p, ok := Get(name)
		if !ok {
			t.Fatalf("%s not registered", name)
		}
		tb := testbed.New(testbed.DefaultOptions())
		g := p.Schedule.Arm(tb.Net.Clock)
		tb.AlignPeriod = p.Schedule.AlignPeriod()
		alignToGrid(tb)
		if !g.Down() {
			t.Errorf("%s: grid-aligned instant not inside the down-window", name)
		}
		tb.Close()
	}
}
