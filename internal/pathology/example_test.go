package pathology_test

import (
	"fmt"

	"repro/internal/pathology"
	"repro/internal/testbed"
)

// ExampleRegister registers a new failure mode. Pathologies compose:
// this one arms two existing knobs at once — a checksum-corrupting
// NAT64 behind a PTB black hole — and the registry treats it like any
// built-in: it gains a fingerprint, appears in sweeps, and must stay
// distinguishable from every other registered pathology (the uniqueness
// test covers registrations made by examples too).
func ExampleRegister() {
	err := pathology.Register(pathology.Pathology{
		Name:      "example-combined-outage",
		Source:    "composed from the Hsu et al. checksum and PTB-black-hole findings",
		Mechanism: "NAT64 flips L4 checksums while the gateway suppresses Packet Too Big",
		Install: func(tb *testbed.Testbed) error {
			tb.Gateway.NAT64.CorruptChecksums = true
			tb.Gateway.SuppressPTB(true)
			return nil
		},
	})
	if err != nil {
		fmt.Println("register:", err)
		return
	}
	f, err := pathology.Compute("example-combined-outage")
	if err != nil {
		fmt.Println("compute:", err)
		return
	}
	fmt.Println("fingerprint:", f.String())
	// Output: fingerprint: 4/8/6/6/2/4
}

// ExampleDecoder goes the other way: an operator measures the mirror
// score of the canonical profiles on a sick network and asks the
// catalog which failure mode produces that vector.
func ExampleDecoder() {
	d, err := pathology.NewDecoder()
	if err != nil {
		fmt.Println("decoder:", err)
		return
	}
	name, err := d.Decode([6]int{6, 9, 8, 8, 2, 6})
	if err != nil {
		fmt.Println("decode:", err)
		return
	}
	fmt.Println(name)
	// Output: nat64-checksum-corruption
}
