// Package pathology is a pluggable registry of DNS/NAT64/delegation
// failure modes drawn from the IPv6-transition measurement literature.
// It is the protocol-semantics sibling of netsim.Impairment: where an
// impairment corrupts frames, a pathology corrupts *meaning* — a DNS64
// synthesizing into a prefix no translator serves, a NAT64 emitting
// broken checksums, a delegation whose nameserver cannot be reached, a
// middlebox eating one query type on one transport.
//
// Each Pathology is a named, documented, deterministic mutation of a
// built testbed. Install functions only flip switches on components the
// world already has, so a pathological world stays a pure function of
// (topology, pathology name) and the serial ≡ sharded equality contract
// of the scenario engine keeps holding with a pathology active.
//
// Stateful pathologies carry a Schedule — onset, active window, flap
// pattern — armed on the world's virtual clock (schedule.go), and may
// carry a Budget that sizes shared resource pools to the world's device
// count. Both are built so the determinism contract survives lifecycle
// state: flap patterns are anchored to the absolute trial-alignment
// grid, schedules registered for sweeps keep zero onset, and budgets
// split pro rata across shard worlds.
//
// Every registered pathology leaves a distinct signature on the mirror's
// 10-point readiness score across the canonical client profiles — its
// Fingerprint. fingerprint.go computes fingerprints and decodes an
// observed score vector back to the pathology that caused it; the
// catalog with sources and reproduction commands is PATHOLOGIES.md.
package pathology

import (
	"fmt"
	"net/netip"
	"sort"
	"time"

	"repro/internal/dns"
	"repro/internal/dnspoison"
	"repro/internal/dnswire"
	"repro/internal/testbed"
)

// exhaustionQuota is the nat64-port-exhaustion per-subscriber port
// block (RFC 7422-style deterministic NAT): one external port per
// source. A client's first flow binds its whole block, so any second
// concurrent flow is refused — the smallest budget that still lets a
// lone sequential prober look healthy between expiries.
const exhaustionQuota = 1

// exhaustionTimeout replaces all four NAT64 session timeouts under
// nat64-port-exhaustion. It must stay strictly under the ≥2 s
// inter-trial bring-up gap so every trial starts with an empty session
// table — the position-independence requirement.
const exhaustionTimeout = 1500 * time.Millisecond

// None is the name of the registered baseline pathology (a no-op
// install); sweeps include it so every matrix carries its own control
// row.
const None = "none"

// Pathology is one named failure mode. The three documentation fields
// are load-bearing: tools/doclint refuses registrations that leave
// Source or Mechanism empty, and PATHOLOGIES.md is generated from the
// same strings, so the catalog cannot drift from the code.
type Pathology struct {
	// Name is the registry key and the -pathology=<name> CLI argument.
	Name string
	// Source cites the measurement literature documenting this failure
	// mode in the wild.
	Source string
	// Mechanism describes what the install mutates and why clients
	// break the way they do.
	Mechanism string
	// Install mutates a built testbed in place. It must be
	// deterministic and must not depend on wall-clock time or
	// randomness — a pathological world replays bit-identically.
	// Exactly one of Install and InstallGated must be set.
	Install func(tb *testbed.Testbed) error

	// InstallGated is Install for stateful pathologies: the engine arms
	// Schedule on the world clock and hands the install the resulting
	// Gate, which the mechanism polls (Gate.Down) or subscribes to
	// (Gate.OnTransition). Exactly one of Install and InstallGated must
	// be set.
	InstallGated func(tb *testbed.Testbed, gate *Gate) error

	// Schedule is the lifecycle of a stateful pathology (onset, active
	// window, flap pattern). The zero Schedule armed through
	// InstallGated means "permanently active". Registered schedules
	// must be shard-safe: zero Onset/Active and a flap period
	// commensurable with the 10 s trial grid.
	Schedule Schedule

	// ScheduleDoc documents a stateful pathology's lifecycle — what
	// turns on when, how it recovers, and what state it leaves behind.
	// Register and tools/doclint both refuse stateful registrations
	// (any of InstallGated, Schedule, Budget set) that leave it empty.
	ScheduleDoc string

	// Budget, when set, sizes shared-resource pools to the world's
	// device count: scenario.RunSharded and RunFabric call it with each
	// shard world's own device count, so a global pool (the NAT64
	// external-port pool) is split pro rata and serial ≡ sharded holds
	// even for a capacity-driven failure mode.
	Budget func(tb *testbed.Testbed, devices int) error
}

// Stateful reports whether the pathology carries run-time lifecycle
// state: a gated install, a non-zero schedule, or a device-budgeted
// resource pool.
func (p Pathology) Stateful() bool {
	return p.InstallGated != nil || p.Budget != nil || p.Schedule.Stateful()
}

var (
	registry = map[string]Pathology{}
	ordered  []string
)

// Register adds p to the registry. Registration fails on duplicate or
// empty names and on missing documentation fields — every pathology
// must say what it reproduces and where it was measured.
func Register(p Pathology) error {
	if p.Name == "" {
		return fmt.Errorf("pathology: empty name")
	}
	if p.Source == "" || p.Mechanism == "" {
		return fmt.Errorf("pathology %q: Source and Mechanism are required", p.Name)
	}
	if p.Install == nil && p.InstallGated == nil {
		return fmt.Errorf("pathology %q: nil Install", p.Name)
	}
	if p.Install != nil && p.InstallGated != nil {
		return fmt.Errorf("pathology %q: Install and InstallGated are mutually exclusive", p.Name)
	}
	if p.Stateful() {
		if p.ScheduleDoc == "" {
			return fmt.Errorf("pathology %q: stateful pathology requires a non-empty ScheduleDoc", p.Name)
		}
		if err := p.Schedule.validate(); err != nil {
			return fmt.Errorf("pathology %q: %w", p.Name, err)
		}
		if !p.Schedule.shardSafe() {
			return fmt.Errorf("pathology %q: registered schedules must keep Onset and Active zero (position independence)", p.Name)
		}
	}
	if _, dup := registry[p.Name]; dup {
		return fmt.Errorf("pathology %q: already registered", p.Name)
	}
	registry[p.Name] = p
	ordered = append(ordered, p.Name)
	return nil
}

// MustRegister is Register for init-time built-ins; it panics on error.
func MustRegister(p Pathology) {
	if err := Register(p); err != nil {
		panic(err)
	}
}

// Get looks up a pathology by name.
func Get(name string) (Pathology, bool) {
	p, ok := registry[name]
	return p, ok
}

// Names returns every registered name with "none" first and the rest
// sorted — the canonical row order of every matrix and test table.
func Names() []string {
	rest := make([]string, 0, len(ordered))
	for _, n := range ordered {
		if n != None {
			rest = append(rest, n)
		}
	}
	sort.Strings(rest)
	return append([]string{None}, rest...)
}

// All returns the registered pathologies in Names order.
func All() []Pathology {
	names := Names()
	out := make([]Pathology, 0, len(names))
	for _, n := range names {
		out = append(out, registry[n])
	}
	return out
}

// Apply installs the named pathology into a built testbed. Stateful
// pathologies are armed with their registered schedule; their Budget
// (if any) is not invoked — use ApplySized when the world's device
// count is known.
func Apply(tb *testbed.Testbed, name string) error {
	p, ok := registry[name]
	if !ok {
		return fmt.Errorf("pathology: unknown %q (have %v)", name, Names())
	}
	return installWith(tb, p, p.Schedule)
}

// ApplySized is Apply plus resource budgeting: after the install it
// calls the pathology's Budget with the number of devices this world
// will run, so per-shard pools are split pro rata. The sharded engines
// pass each shard's own device count; serial runs pass the full
// population.
func ApplySized(tb *testbed.Testbed, name string, devices int) error {
	p, ok := registry[name]
	if !ok {
		return fmt.Errorf("pathology: unknown %q (have %v)", name, Names())
	}
	if err := installWith(tb, p, p.Schedule); err != nil {
		return err
	}
	if p.Budget != nil {
		return p.Budget(tb, devices)
	}
	return nil
}

// installWith runs the pathology's install under the given schedule
// (the registered one, or ComputeTimeline's probe-window override). For
// gated installs it arms the schedule on the world clock and records
// the world's trial-alignment period on the testbed, which is how the
// scenario engine learns to grid-align trials for this world.
func installWith(tb *testbed.Testbed, p Pathology, sched Schedule) error {
	if p.InstallGated == nil {
		return p.Install(tb)
	}
	gate := sched.Arm(tb.Net.Clock)
	if ap := sched.AlignPeriod(); ap > tb.AlignPeriod {
		tb.AlignPeriod = ap
	}
	return p.InstallGated(tb, gate)
}

// Factory wraps a world factory so every world it builds comes up with
// the named pathology installed. The result is assignable to
// scenario.WorldFactory, which is how a pathology rides through
// RunSharded without this package importing the scenario engine.
// Capacity budgets are not applied; prefer FactorySized for pathologies
// that carry one.
func Factory(base func() (*testbed.Testbed, error), name string) func() (*testbed.Testbed, error) {
	return func() (*testbed.Testbed, error) {
		tb, err := base()
		if err != nil {
			return nil, err
		}
		if err := Apply(tb, name); err != nil {
			tb.Close()
			return nil, err
		}
		return tb, nil
	}
}

// FactorySized is Factory for device-count-aware worlds: the returned
// factory takes the number of devices the world will run and forwards
// it to the pathology's Budget, so scenario.RunShardedSized can split a
// global resource pool across shard worlds pro rata. The result is
// assignable to scenario.SizedWorldFactory.
func FactorySized(base func() (*testbed.Testbed, error), name string) func(devices int) (*testbed.Testbed, error) {
	return func(devices int) (*testbed.Testbed, error) {
		tb, err := base()
		if err != nil {
			return nil, err
		}
		if err := ApplySized(tb, name, devices); err != nil {
			tb.Close()
			return nil, err
		}
		return tb, nil
	}
}

// MismatchedPrefix is the /96 the dns64-prefix-mismatch pathology makes
// the DNS64 synthesize into. No translator serves it, so synthesized
// AAAAs route natively to the WAN and black-hole.
var MismatchedPrefix = netip.MustParsePrefix("2001:db8:64::/96")

func init() {
	MustRegister(Pathology{
		Name:      None,
		Source:    "baseline (no pathology) — control row for every sweep",
		Mechanism: "no mutation; the testbed behaves exactly as built",
		Install:   func(*testbed.Testbed) error { return nil },
	})

	MustRegister(Pathology{
		Name: "dns64-prefix-mismatch",
		Source: "Hsu et al., \"A First Look at NAT64 Deployment in the Wild\" " +
			"(broken DNS64/NAT64 pairs: resolvers synthesizing into prefixes no local translator serves)",
		Mechanism: "the healthy DNS64 synthesizes AAAAs into 2001:db8:64::/96 while the gateway " +
			"translates only 64:ff9b::/96; synthesized addresses are routed natively to the WAN " +
			"and black-hole, so DNS64-dependent clients time out per AAAA while CLAT clients " +
			"survive via their own well-known-prefix translation of the A record",
		Install: func(tb *testbed.Testbed) error {
			tb.Healthy64.Prefix = MismatchedPrefix
			return nil
		},
	})

	MustRegister(Pathology{
		Name: "nat64-checksum-corruption",
		Source: "Hsu et al., \"A First Look at NAT64 Deployment in the Wild\" " +
			"(translators emitting invalid L4 checksums after address rewriting)",
		Mechanism: "the gateway NAT64 flips the L4 checksum of every translated v6→v4 packet; " +
			"receivers verify and silently discard, so every translated path (synthesized AAAA " +
			"and CLAT alike) stalls while native IPv6 stays healthy",
		Install: func(tb *testbed.Testbed) error {
			tb.Gateway.NAT64.CorruptChecksums = true
			return nil
		},
	})

	MustRegister(Pathology{
		Name: "nat64-mtu-blackhole",
		Source: "Hsu et al., \"A First Look at NAT64 Deployment in the Wild\"; RFC 4821 §1 " +
			"(ICMP black holes breaking path MTU discovery)",
		Mechanism: "the gateway drops oversized packets without emitting ICMPv6 Packet Too Big " +
			"in either direction; PMTUD never converges, so small transfers work and anything " +
			"larger than the constrained 5G MTU stalls — the mirror's large-packet probe is the " +
			"only subtest that dies",
		Install: func(tb *testbed.Testbed) error {
			tb.Gateway.SuppressPTB(true)
			return nil
		},
	})

	MustRegister(Pathology{
		Name: "delegation-no-aaaa",
		Source: "Streibelt et al., \"How Ready Is DNS for an IPv6-Only World?\" " +
			"(zones delegated to nameservers without AAAA or glue are unresolvable from v6-only resolvers)",
		Mechanism: "the mirror zone is delegated to an in-bailiwick nameserver with neither an " +
			"AAAA record nor glue; the healthy resolver's authoritative transport is IPv6-only, " +
			"so every query under the zone — A and AAAA alike — answers SERVFAIL, while the " +
			"wildcard poisoner keeps fabricating A answers without ever consulting upstream",
		Install: func(tb *testbed.Testbed) error {
			d := dns.NewDelegated(tb.Healthy64.Inner)
			d.V6OnlyTransport = true
			d.Delegate(tb.Mirror.Name, dns.NSProfile{
				Name:    "ns6." + tb.Mirror.Name,
				HasAAAA: false,
				HasGlue: false,
			})
			tb.Healthy64.Inner = d
			return nil
		},
	})

	MustRegister(Pathology{
		Name: "dns-v4-interference",
		Source: "Martiny et al. (transport-asymmetric resolver interference: middleboxes " +
			"discarding one record type on the IPv4 path)",
		Mechanism: "an on-path middlebox silently eats AAAA queries on the IPv4-transport " +
			"(poisoned) resolver path; clients preferring that resolver get only the poisoned A " +
			"answer after an AAAA timeout and are herded to the intervention page, while " +
			"RDNSS-preferring clients never notice",
		Install: func(tb *testbed.Testbed) error {
			tb.PoisonLog.Inner = dnspoison.NewInterference(tb.PoisonLog.Inner, dnswire.TypeAAAA)
			return nil
		},
	})

	MustRegister(Pathology{
		Name: "nat64-port-exhaustion",
		Source: "Hsu et al., \"A First Look at NAT64 Deployment in the Wild\"; Boswell et al., " +
			"\"Measuring NAT64 Usage in the Wild\" (translators with small per-subscriber port " +
			"budgets refusing new flows under connection churn)",
		Mechanism: "the gateway NAT64 shrinks to an RFC 7422-style per-subscriber port block of " +
			fmt.Sprint(exhaustionQuota) + " external port and shortens every session timeout to " +
			"1.5 s; a client's first flow binds its whole block, any concurrent second flow is " +
			"refused with ICMPv6 Destination Unreachable (RFC 6146 §3.5.1.1), and capacity " +
			"returns as idle sessions expire",
		ScheduleDoc: "permanently armed (zero Schedule): the block size switches on at install " +
			"via Gate.OnTransition and never recovers on its own — recovery is per-flow, riding " +
			"the 1.5 s session idle-timeout expiry, so every 10 s-aligned trial starts with an " +
			"empty session table and observes an identical exhaustion curve. Budget sizes the " +
			"external port pool to block × devices, so shard worlds split the serial pool pro rata",
		InstallGated: func(tb *testbed.Testbed, gate *Gate) error {
			nat := tb.Gateway.NAT64
			nat.SetSessionTimeouts(exhaustionTimeout, exhaustionTimeout, exhaustionTimeout, exhaustionTimeout)
			gate.OnTransition(func(active bool) {
				if active {
					nat.MaxSessionsPerSource = exhaustionQuota
				} else {
					nat.MaxSessionsPerSource = 0
				}
			})
			// Live-session totals are now dominated by expiry, not load;
			// sample them per trial so serial and sharded runs agree.
			tb.SampleNAT64PerTrial = true
			return nil
		},
		Budget: func(tb *testbed.Testbed, devices int) error {
			maxPort := 32768 + exhaustionQuota*devices - 1
			if maxPort > 49151 {
				maxPort = 49151
			}
			return tb.Gateway.NAT64.SetPortRange(32768, uint16(maxPort))
		},
	})

	MustRegister(Pathology{
		Name: "dns64-flapping",
		Source: "Boswell et al., \"Measuring NAT64 Usage in the Wild\" (resolvers with " +
			"intermittent DNS64 function: AAAA synthesis present in some measurements of the " +
			"same resolver and absent in others)",
		Mechanism: "the healthy resolver's DNS64 stage intermittently wedges: during a " +
			"down-window every AAAA query is silently dropped (the daemon's IPv6 path hangs) " +
			"while A queries keep answering, so names flicker between resolving and timing " +
			"out — and because each timeout burns client-visible seconds, one probe suite " +
			"samples several flap phases and no two subtests need agree",
		ScheduleDoc: "flaps forever: every 2 s period carries one 900 ms down-window whose " +
			"offset is drawn once from the seeded splitmix64 stream and anchored to the " +
			"absolute 10 s trial grid — for this stream the draw lands the window at the " +
			"start of each period, the phase every grid-aligned probe samples. The install " +
			"caps SynthTTL and the resolver cache's negative TTL at 1 s so no cached answer " +
			"outlives the window that produced it",
		Schedule: Schedule{FlapEvery: 2 * time.Second, FlapDown: 900 * time.Millisecond,
			Seed: ScheduleSeed("dns64-flapping")},
		InstallGated: func(tb *testbed.Testbed, gate *Gate) error {
			tb.Healthy64.Suppress = gate.Down
			tb.Healthy64.SynthTTL = 1
			tb.HealthyCache.NegativeTTL = time.Second
			return nil
		},
	})

	MustRegister(Pathology{
		Name: "gateway-ra-outage",
		Source: "paper §IV (the 5G gateway's RA behavior is the testbed's weakest link); " +
			"RFC 4861 §6.2.5 / RFC 4862 §5.5.3 (router and address lifetimes decaying when " +
			"advertisements stop)",
		Mechanism: "the gateway goes RA-silent on a schedule: beacons and RS answers are " +
			"swallowed, and advertised lifetimes are shortened (valid 40 s, preferred 20 s, " +
			"router 15 s) so the silence bites — hosts joining inside the window never SLAAC, " +
			"hosts that joined before it lose their default route mid-window, and recovery is " +
			"the first beacon after the window reopens (renumbering-safe: the RA carries the " +
			"same prefix)",
		ScheduleDoc: "flaps forever: every 30 s period carries one 21.2 s silence window drawn " +
			"from the seeded splitmix64 stream, anchored to the absolute grid — for this " +
			"stream the draw lands the window at the start of each period, covering all " +
			"three 10 s beacon instants and every grid-aligned join. Trials align to the " +
			"full 30 s period (AlignPeriod) so each one observes the same outage phase, " +
			"keeping serial ≡ sharded intact",
		Schedule: Schedule{FlapEvery: 30 * time.Second, FlapDown: 21200 * time.Millisecond,
			Seed: ScheduleSeed("gateway-ra-outage")},
		InstallGated: func(tb *testbed.Testbed, gate *Gate) error {
			tb.Gateway.SetRAGate(gate.Down)
			tb.Gateway.SetRALifetimes(40*time.Second, 20*time.Second, 15*time.Second)
			return nil
		},
	})

	MustRegister(Pathology{
		Name: "dns-v6-interference",
		Source: "Martiny et al. (transport-asymmetric resolver interference: the IPv6 path " +
			"degraded while IPv4 resolution keeps working)",
		Mechanism: "the mirror-image middlebox eats AAAA queries on the RDNSS (IPv6-transport) " +
			"resolver path; clients with an IPv4-transport fallback resolver recover after the " +
			"timeout, but RDNSS-only clients are left with A-only answers (CLAT keeps them " +
			"partially alive) or nothing at all",
		Install: func(tb *testbed.Testbed) error {
			tb.HealthyLog.Inner = dnspoison.NewInterference(tb.HealthyLog.Inner, dnswire.TypeAAAA)
			return nil
		},
	})
}
