// Package pathology is a pluggable registry of DNS/NAT64/delegation
// failure modes drawn from the IPv6-transition measurement literature.
// It is the protocol-semantics sibling of netsim.Impairment: where an
// impairment corrupts frames, a pathology corrupts *meaning* — a DNS64
// synthesizing into a prefix no translator serves, a NAT64 emitting
// broken checksums, a delegation whose nameserver cannot be reached, a
// middlebox eating one query type on one transport.
//
// Each Pathology is a named, documented, deterministic mutation of a
// built testbed. Install functions only flip switches on components the
// world already has, so a pathological world stays a pure function of
// (topology, pathology name) and the serial ≡ sharded equality contract
// of the scenario engine keeps holding with a pathology active.
//
// Every registered pathology leaves a distinct signature on the mirror's
// 10-point readiness score across the canonical client profiles — its
// Fingerprint. fingerprint.go computes fingerprints and decodes an
// observed score vector back to the pathology that caused it; the
// catalog with sources and reproduction commands is PATHOLOGIES.md.
package pathology

import (
	"fmt"
	"net/netip"
	"sort"

	"repro/internal/dns"
	"repro/internal/dnspoison"
	"repro/internal/dnswire"
	"repro/internal/testbed"
)

// None is the name of the registered baseline pathology (a no-op
// install); sweeps include it so every matrix carries its own control
// row.
const None = "none"

// Pathology is one named failure mode. The three documentation fields
// are load-bearing: tools/doclint refuses registrations that leave
// Source or Mechanism empty, and PATHOLOGIES.md is generated from the
// same strings, so the catalog cannot drift from the code.
type Pathology struct {
	// Name is the registry key and the -pathology=<name> CLI argument.
	Name string
	// Source cites the measurement literature documenting this failure
	// mode in the wild.
	Source string
	// Mechanism describes what the install mutates and why clients
	// break the way they do.
	Mechanism string
	// Install mutates a built testbed in place. It must be
	// deterministic and must not depend on wall-clock time or
	// randomness — a pathological world replays bit-identically.
	Install func(tb *testbed.Testbed) error
}

var (
	registry = map[string]Pathology{}
	ordered  []string
)

// Register adds p to the registry. Registration fails on duplicate or
// empty names and on missing documentation fields — every pathology
// must say what it reproduces and where it was measured.
func Register(p Pathology) error {
	if p.Name == "" {
		return fmt.Errorf("pathology: empty name")
	}
	if p.Source == "" || p.Mechanism == "" {
		return fmt.Errorf("pathology %q: Source and Mechanism are required", p.Name)
	}
	if p.Install == nil {
		return fmt.Errorf("pathology %q: nil Install", p.Name)
	}
	if _, dup := registry[p.Name]; dup {
		return fmt.Errorf("pathology %q: already registered", p.Name)
	}
	registry[p.Name] = p
	ordered = append(ordered, p.Name)
	return nil
}

// MustRegister is Register for init-time built-ins; it panics on error.
func MustRegister(p Pathology) {
	if err := Register(p); err != nil {
		panic(err)
	}
}

// Get looks up a pathology by name.
func Get(name string) (Pathology, bool) {
	p, ok := registry[name]
	return p, ok
}

// Names returns every registered name with "none" first and the rest
// sorted — the canonical row order of every matrix and test table.
func Names() []string {
	rest := make([]string, 0, len(ordered))
	for _, n := range ordered {
		if n != None {
			rest = append(rest, n)
		}
	}
	sort.Strings(rest)
	return append([]string{None}, rest...)
}

// All returns the registered pathologies in Names order.
func All() []Pathology {
	names := Names()
	out := make([]Pathology, 0, len(names))
	for _, n := range names {
		out = append(out, registry[n])
	}
	return out
}

// Apply installs the named pathology into a built testbed.
func Apply(tb *testbed.Testbed, name string) error {
	p, ok := registry[name]
	if !ok {
		return fmt.Errorf("pathology: unknown %q (have %v)", name, Names())
	}
	return p.Install(tb)
}

// Factory wraps a world factory so every world it builds comes up with
// the named pathology installed. The result is assignable to
// scenario.WorldFactory, which is how a pathology rides through
// RunSharded without this package importing the scenario engine.
func Factory(base func() (*testbed.Testbed, error), name string) func() (*testbed.Testbed, error) {
	return func() (*testbed.Testbed, error) {
		tb, err := base()
		if err != nil {
			return nil, err
		}
		if err := Apply(tb, name); err != nil {
			tb.Close()
			return nil, err
		}
		return tb, nil
	}
}

// MismatchedPrefix is the /96 the dns64-prefix-mismatch pathology makes
// the DNS64 synthesize into. No translator serves it, so synthesized
// AAAAs route natively to the WAN and black-hole.
var MismatchedPrefix = netip.MustParsePrefix("2001:db8:64::/96")

func init() {
	MustRegister(Pathology{
		Name:      None,
		Source:    "baseline (no pathology) — control row for every sweep",
		Mechanism: "no mutation; the testbed behaves exactly as built",
		Install:   func(*testbed.Testbed) error { return nil },
	})

	MustRegister(Pathology{
		Name: "dns64-prefix-mismatch",
		Source: "Hsu et al., \"A First Look at NAT64 Deployment in the Wild\" " +
			"(broken DNS64/NAT64 pairs: resolvers synthesizing into prefixes no local translator serves)",
		Mechanism: "the healthy DNS64 synthesizes AAAAs into 2001:db8:64::/96 while the gateway " +
			"translates only 64:ff9b::/96; synthesized addresses are routed natively to the WAN " +
			"and black-hole, so DNS64-dependent clients time out per AAAA while CLAT clients " +
			"survive via their own well-known-prefix translation of the A record",
		Install: func(tb *testbed.Testbed) error {
			tb.Healthy64.Prefix = MismatchedPrefix
			return nil
		},
	})

	MustRegister(Pathology{
		Name: "nat64-checksum-corruption",
		Source: "Hsu et al., \"A First Look at NAT64 Deployment in the Wild\" " +
			"(translators emitting invalid L4 checksums after address rewriting)",
		Mechanism: "the gateway NAT64 flips the L4 checksum of every translated v6→v4 packet; " +
			"receivers verify and silently discard, so every translated path (synthesized AAAA " +
			"and CLAT alike) stalls while native IPv6 stays healthy",
		Install: func(tb *testbed.Testbed) error {
			tb.Gateway.NAT64.CorruptChecksums = true
			return nil
		},
	})

	MustRegister(Pathology{
		Name: "nat64-mtu-blackhole",
		Source: "Hsu et al., \"A First Look at NAT64 Deployment in the Wild\"; RFC 4821 §1 " +
			"(ICMP black holes breaking path MTU discovery)",
		Mechanism: "the gateway drops oversized packets without emitting ICMPv6 Packet Too Big " +
			"in either direction; PMTUD never converges, so small transfers work and anything " +
			"larger than the constrained 5G MTU stalls — the mirror's large-packet probe is the " +
			"only subtest that dies",
		Install: func(tb *testbed.Testbed) error {
			tb.Gateway.SuppressPTB(true)
			return nil
		},
	})

	MustRegister(Pathology{
		Name: "delegation-no-aaaa",
		Source: "Streibelt et al., \"How Ready Is DNS for an IPv6-Only World?\" " +
			"(zones delegated to nameservers without AAAA or glue are unresolvable from v6-only resolvers)",
		Mechanism: "the mirror zone is delegated to an in-bailiwick nameserver with neither an " +
			"AAAA record nor glue; the healthy resolver's authoritative transport is IPv6-only, " +
			"so every query under the zone — A and AAAA alike — answers SERVFAIL, while the " +
			"wildcard poisoner keeps fabricating A answers without ever consulting upstream",
		Install: func(tb *testbed.Testbed) error {
			d := dns.NewDelegated(tb.Healthy64.Inner)
			d.V6OnlyTransport = true
			d.Delegate(tb.Mirror.Name, dns.NSProfile{
				Name:    "ns6." + tb.Mirror.Name,
				HasAAAA: false,
				HasGlue: false,
			})
			tb.Healthy64.Inner = d
			return nil
		},
	})

	MustRegister(Pathology{
		Name: "dns-v4-interference",
		Source: "Martiny et al. (transport-asymmetric resolver interference: middleboxes " +
			"discarding one record type on the IPv4 path)",
		Mechanism: "an on-path middlebox silently eats AAAA queries on the IPv4-transport " +
			"(poisoned) resolver path; clients preferring that resolver get only the poisoned A " +
			"answer after an AAAA timeout and are herded to the intervention page, while " +
			"RDNSS-preferring clients never notice",
		Install: func(tb *testbed.Testbed) error {
			tb.PoisonLog.Inner = dnspoison.NewInterference(tb.PoisonLog.Inner, dnswire.TypeAAAA)
			return nil
		},
	})

	MustRegister(Pathology{
		Name: "dns-v6-interference",
		Source: "Martiny et al. (transport-asymmetric resolver interference: the IPv6 path " +
			"degraded while IPv4 resolution keeps working)",
		Mechanism: "the mirror-image middlebox eats AAAA queries on the RDNSS (IPv6-transport) " +
			"resolver path; clients with an IPv4-transport fallback resolver recover after the " +
			"timeout, but RDNSS-only clients are left with A-only answers (CLAT keeps them " +
			"partially alive) or nothing at all",
		Install: func(tb *testbed.Testbed) error {
			tb.HealthyLog.Inner = dnspoison.NewInterference(tb.HealthyLog.Inner, dnswire.TypeAAAA)
			return nil
		},
	})
}
