// Command doclint enforces the repo's documentation bar: every exported
// top-level identifier (type, function, method, const and var group)
// must carry a doc comment, and every package must have a package
// comment. It additionally holds pathology registrations to the catalog
// bar: every Pathology composite literal must carry non-empty Name,
// Source and Mechanism strings, and stateful literals (any with a
// Schedule, Budget or InstallGated field) a non-empty ScheduleDoc. It
// walks the package directories given as arguments (or
// ./internal/... and ./cmd/... plus the module root by default), parses
// the non-test sources with go/parser, and prints one line per missing
// comment. Exit status 1 means the bar is not met — CI runs this next
// to go vet.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

func main() {
	roots := os.Args[1:]
	if len(roots) == 0 {
		roots = []string{".", "./internal/...", "./cmd/...", "./tools/..."}
	}
	dirs := map[string]bool{}
	for _, r := range roots {
		if rest, ok := strings.CutSuffix(r, "/..."); ok {
			_ = filepath.WalkDir(rest, func(p string, d fs.DirEntry, err error) error {
				if err != nil || !d.IsDir() || strings.HasPrefix(d.Name(), ".") {
					return err
				}
				dirs[p] = true
				return nil
			})
			continue
		}
		dirs[r] = true
	}
	ordered := make([]string, 0, len(dirs))
	for d := range dirs {
		ordered = append(ordered, d)
	}
	sort.Strings(ordered)

	bad := 0
	for _, dir := range ordered {
		bad += lintDir(dir)
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "doclint: %d exported identifier(s) lack doc comments\n", bad)
		os.Exit(1)
	}
}

// lintDir parses one directory's package and reports undocumented
// exported declarations. Test files are skipped: their exported helpers
// document themselves through the tests that use them.
func lintDir(dir string) int {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi fs.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		fmt.Fprintf(os.Stderr, "doclint: %s: %v\n", dir, err)
		return 1
	}
	bad := 0
	for _, pkg := range pkgs {
		if !hasPackageDoc(pkg) {
			fmt.Printf("%s: package %s has no package comment\n", dir, pkg.Name)
			bad++
		}
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				bad += lintDecl(fset, decl)
			}
			bad += lintPathologyLits(fset, file)
		}
	}
	return bad
}

// hasPackageDoc reports whether any file in the package carries a
// package comment.
func hasPackageDoc(pkg *ast.Package) bool {
	for _, f := range pkg.Files {
		if f.Doc != nil && len(strings.TrimSpace(f.Doc.Text())) > 0 {
			return true
		}
	}
	return false
}

// lintDecl reports undocumented exported identifiers introduced by one
// top-level declaration. A doc comment on a const/var/type group covers
// every spec inside it; a spec-level doc or trailing line comment also
// counts.
func lintDecl(fset *token.FileSet, decl ast.Decl) int {
	bad := 0
	report := func(pos token.Pos, kind, name string) {
		fmt.Printf("%s: %s %s has no doc comment\n", fset.Position(pos), kind, name)
		bad++
	}
	switch d := decl.(type) {
	case *ast.FuncDecl:
		if d.Name.IsExported() && d.Doc == nil && exportedRecv(d) {
			kind := "func"
			if d.Recv != nil {
				kind = "method"
			}
			report(d.Pos(), kind, d.Name.Name)
		}
	case *ast.GenDecl:
		groupDoc := d.Doc != nil
		for _, spec := range d.Specs {
			switch s := spec.(type) {
			case *ast.TypeSpec:
				if s.Name.IsExported() && !groupDoc && s.Doc == nil && s.Comment == nil {
					report(s.Pos(), "type", s.Name.Name)
				}
			case *ast.ValueSpec:
				if groupDoc || s.Doc != nil || s.Comment != nil {
					continue
				}
				for _, n := range s.Names {
					if n.IsExported() {
						report(n.Pos(), "value", n.Name)
					}
				}
			}
		}
	}
	return bad
}

// lintPathologyLits enforces the pathology documentation bar on top of
// the runtime check in pathology.Register: every Pathology composite
// literal must spell out non-empty Name, Source and Mechanism strings —
// and, when the literal carries lifecycle state (Schedule, Budget or
// InstallGated), a non-empty ScheduleDoc — so an undocumented failure
// mode fails the docs lane before any test ever constructs it. Fields
// whose values are not compile-time string constants are left to the
// runtime check.
func lintPathologyLits(fset *token.FileSet, file *ast.File) int {
	bad := 0
	ast.Inspect(file, func(n ast.Node) bool {
		cl, ok := n.(*ast.CompositeLit)
		if !ok || !isPathologyType(cl.Type) {
			return true
		}
		fields := map[string]ast.Expr{}
		for _, el := range cl.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				if id, ok := kv.Key.(*ast.Ident); ok {
					fields[id.Name] = kv.Value
				}
			}
		}
		required := []string{"Name", "Source", "Mechanism"}
		// Stateful pathologies — anything carrying lifecycle state —
		// must additionally document that lifecycle: what turns on when,
		// how it recovers, and what state it leaves behind.
		for _, stateful := range []string{"Schedule", "Budget", "InstallGated"} {
			if _, ok := fields[stateful]; ok {
				required = append(required, "ScheduleDoc")
				break
			}
		}
		for _, req := range required {
			v, ok := fields[req]
			if !ok {
				fmt.Printf("%s: Pathology literal lacks the %s field\n", fset.Position(cl.Pos()), req)
				bad++
				continue
			}
			if s, lit := stringConst(v); lit && strings.TrimSpace(s) == "" {
				fmt.Printf("%s: Pathology %s is empty\n", fset.Position(v.Pos()), req)
				bad++
			}
		}
		return true
	})
	return bad
}

// isPathologyType matches the Pathology struct type by name, qualified
// (pathology.Pathology) or not.
func isPathologyType(e ast.Expr) bool {
	switch t := e.(type) {
	case *ast.Ident:
		return t.Name == "Pathology"
	case *ast.SelectorExpr:
		return t.Sel.Name == "Pathology"
	}
	return false
}

// stringConst folds a tree of +-concatenated string literals into its
// value; ok is false when any leaf is not a string literal.
func stringConst(e ast.Expr) (string, bool) {
	switch x := e.(type) {
	case *ast.BasicLit:
		if x.Kind == token.STRING {
			s, err := strconv.Unquote(x.Value)
			return s, err == nil
		}
	case *ast.BinaryExpr:
		if x.Op == token.ADD {
			l, lok := stringConst(x.X)
			r, rok := stringConst(x.Y)
			return l + r, lok && rok
		}
	case *ast.ParenExpr:
		return stringConst(x.X)
	}
	return "", false
}

// exportedRecv reports whether a function's receiver type (if any) is
// exported — methods on unexported types are internal plumbing and not
// held to the doc bar.
func exportedRecv(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true
	}
	t := d.Recv.List[0].Type
	for {
		switch x := t.(type) {
		case *ast.StarExpr:
			t = x.X
		case *ast.IndexExpr:
			t = x.X
		case *ast.Ident:
			return x.IsExported()
		default:
			return true
		}
	}
}
