// Command doclint enforces the repo's documentation bar: every exported
// top-level identifier (type, function, method, const and var group)
// must carry a doc comment, and every package must have a package
// comment. It walks the package directories given as arguments (or
// ./internal/... and ./cmd/... plus the module root by default), parses
// the non-test sources with go/parser, and prints one line per missing
// comment. Exit status 1 means the bar is not met — CI runs this next
// to go vet.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

func main() {
	roots := os.Args[1:]
	if len(roots) == 0 {
		roots = []string{".", "./internal/...", "./cmd/...", "./tools/..."}
	}
	dirs := map[string]bool{}
	for _, r := range roots {
		if rest, ok := strings.CutSuffix(r, "/..."); ok {
			_ = filepath.WalkDir(rest, func(p string, d fs.DirEntry, err error) error {
				if err != nil || !d.IsDir() || strings.HasPrefix(d.Name(), ".") {
					return err
				}
				dirs[p] = true
				return nil
			})
			continue
		}
		dirs[r] = true
	}
	ordered := make([]string, 0, len(dirs))
	for d := range dirs {
		ordered = append(ordered, d)
	}
	sort.Strings(ordered)

	bad := 0
	for _, dir := range ordered {
		bad += lintDir(dir)
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "doclint: %d exported identifier(s) lack doc comments\n", bad)
		os.Exit(1)
	}
}

// lintDir parses one directory's package and reports undocumented
// exported declarations. Test files are skipped: their exported helpers
// document themselves through the tests that use them.
func lintDir(dir string) int {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi fs.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		fmt.Fprintf(os.Stderr, "doclint: %s: %v\n", dir, err)
		return 1
	}
	bad := 0
	for _, pkg := range pkgs {
		if !hasPackageDoc(pkg) {
			fmt.Printf("%s: package %s has no package comment\n", dir, pkg.Name)
			bad++
		}
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				bad += lintDecl(fset, decl)
			}
		}
	}
	return bad
}

// hasPackageDoc reports whether any file in the package carries a
// package comment.
func hasPackageDoc(pkg *ast.Package) bool {
	for _, f := range pkg.Files {
		if f.Doc != nil && len(strings.TrimSpace(f.Doc.Text())) > 0 {
			return true
		}
	}
	return false
}

// lintDecl reports undocumented exported identifiers introduced by one
// top-level declaration. A doc comment on a const/var/type group covers
// every spec inside it; a spec-level doc or trailing line comment also
// counts.
func lintDecl(fset *token.FileSet, decl ast.Decl) int {
	bad := 0
	report := func(pos token.Pos, kind, name string) {
		fmt.Printf("%s: %s %s has no doc comment\n", fset.Position(pos), kind, name)
		bad++
	}
	switch d := decl.(type) {
	case *ast.FuncDecl:
		if d.Name.IsExported() && d.Doc == nil && exportedRecv(d) {
			kind := "func"
			if d.Recv != nil {
				kind = "method"
			}
			report(d.Pos(), kind, d.Name.Name)
		}
	case *ast.GenDecl:
		groupDoc := d.Doc != nil
		for _, spec := range d.Specs {
			switch s := spec.(type) {
			case *ast.TypeSpec:
				if s.Name.IsExported() && !groupDoc && s.Doc == nil && s.Comment == nil {
					report(s.Pos(), "type", s.Name.Name)
				}
			case *ast.ValueSpec:
				if groupDoc || s.Doc != nil || s.Comment != nil {
					continue
				}
				for _, n := range s.Names {
					if n.IsExported() {
						report(n.Pos(), "value", n.Name)
					}
				}
			}
		}
	}
	return bad
}

// exportedRecv reports whether a function's receiver type (if any) is
// exported — methods on unexported types are internal plumbing and not
// held to the doc bar.
func exportedRecv(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true
	}
	t := d.Recv.List[0].Type
	for {
		switch x := t.(type) {
		case *ast.StarExpr:
			t = x.X
		case *ast.IndexExpr:
			t = x.X
		case *ast.Ident:
			return x.IsExported()
		default:
			return true
		}
	}
}
