// Command benchgate is the benchmark allocation-regression gate: it
// reads `go test -bench` output on stdin, loads a BENCH_N.json snapshot
// named on the command line, and fails (exit 1) if any benchmark
// present in both measures more than 10% above the snapshot's recorded
// allocs/op. A snapshot value of 0 allocs/op is therefore gated
// strictly — a single op of per-frame garbage on the ring drain loop
// fails CI. Benchmarks in the snapshot that never appear on stdin also
// fail, so a renamed or deleted benchmark cannot silently disarm the
// gate.
//
// Usage: go test -run '^$' -bench X -benchmem . | benchgate BENCH_4.json
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"regexp"
	"strconv"
)

// measure is one recorded benchmark measurement; fields the gate does
// not compare are ignored during decoding.
type measure struct {
	AllocsOp float64 `json:"allocs_op"`
}

// record is a snapshot entry: before/after measurements, either of
// which may be absent (null).
type record struct {
	Before *measure `json:"before"`
	After  *measure `json:"after"`
}

// snapshot mirrors the BENCH_N.json layout the repo records benchmark
// passes in.
type snapshot struct {
	Benchmarks map[string]record `json:"benchmarks"`
}

// slack is the multiplicative tolerance applied to recorded allocs/op:
// deterministic simulations still see small GC/sync.Pool jitter, and
// 0-alloc records stay strict because 0*1.1 is still 0.
const slack = 1.10

// benchLine matches one benchmark result line. The first group is the
// benchmark name with any -GOMAXPROCS suffix stripped; the second is
// the allocs/op figure (always printed: every benchmark in this repo
// calls b.ReportAllocs).
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s.*?(\d+(?:\.\d+)?) allocs/op`)

func main() {
	if len(os.Args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: go test -bench ... -benchmem | benchgate BENCH_N.json")
		os.Exit(2)
	}
	raw, err := os.ReadFile(os.Args[1])
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		os.Exit(2)
	}
	var snap snapshot
	if err := json.Unmarshal(raw, &snap); err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: parsing %s: %v\n", os.Args[1], err)
		os.Exit(2)
	}

	want := make(map[string]float64)
	for name, rec := range snap.Benchmarks {
		m := rec.After
		if m == nil {
			m = rec.Before
		}
		if m != nil {
			want[name] = m.AllocsOp
		}
	}
	if len(want) == 0 {
		fmt.Fprintf(os.Stderr, "benchgate: %s records no gateable benchmarks\n", os.Args[1])
		os.Exit(2)
	}

	failed := false
	seen := make(map[string]bool)
	sc := bufio.NewScanner(os.Stdin)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line) // pass the bench output through for the CI log
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		name := m[1]
		limit, gated := want[name]
		if !gated {
			continue
		}
		seen[name] = true
		got, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchgate: %s: unparsable allocs/op %q\n", name, m[2])
			failed = true
			continue
		}
		if got > limit*slack {
			fmt.Fprintf(os.Stderr, "benchgate: FAIL %s: %.0f allocs/op exceeds snapshot %.0f (+10%% slack)\n",
				name, got, limit)
			failed = true
		} else {
			fmt.Fprintf(os.Stderr, "benchgate: ok   %s: %.0f allocs/op (snapshot %.0f)\n", name, got, limit)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: reading stdin: %v\n", err)
		os.Exit(2)
	}
	for name := range want {
		if !seen[name] {
			fmt.Fprintf(os.Stderr, "benchgate: FAIL %s: recorded in snapshot but absent from bench output\n", name)
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
}
