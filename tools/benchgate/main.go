// Command benchgate is the benchmark regression gate: it reads `go test
// -bench` output on stdin, loads BENCH_N.json snapshots named on the
// command line, and fails (exit 1) if any benchmark present in both
// measures above a snapshot-recorded metric plus that metric's slack.
// Three metrics are gated, each only when the snapshot records it:
// allocs/op and bytes/client (the fabric memory diet — the marginal
// heap cost of one registered client in a million-client world) at 10%
// slack, since deterministic simulations allocate deterministically;
// and ns/op at 2.5x slack, wide enough to absorb shared-runner CI
// timing noise while still catching an order-of-magnitude slowdown
// like a lost fast path or an accidental fresh-build in a pooled loop.
// A snapshot value of 0 is gated strictly under any slack — a single
// op of per-frame garbage on the ring drain loop fails CI. Benchmarks
// in the snapshot that never appear on stdin also fail, as does a
// recorded metric missing from a benchmark's output line, so a renamed
// benchmark or a dropped ReportMetric cannot silently disarm the gate.
//
// Multiple snapshots merge in argument order, later files overriding
// earlier ones per metric, so passing the whole BENCH_1..BENCH_6
// trajectory gates each benchmark at its most recently recorded value.
//
// Usage: go test -run '^$' -bench X -benchmem . | benchgate BENCH_4.json [BENCH_5.json ...]
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"regexp"
	"strconv"
)

// measure is one recorded benchmark measurement. Gated fields are
// pointers: a snapshot records only the metrics a benchmark reports,
// and the gate checks only what the snapshot records. Fields the gate
// does not compare are ignored during decoding.
type measure struct {
	NsOp        *float64 `json:"ns_op"`
	AllocsOp    *float64 `json:"allocs_op"`
	BytesClient *float64 `json:"bytes_client"`
}

// record is a snapshot entry: before/after measurements, either of
// which may be absent (null).
type record struct {
	Before *measure `json:"before"`
	After  *measure `json:"after"`
}

// snapshot mirrors the BENCH_N.json layout the repo records benchmark
// passes in.
type snapshot struct {
	Benchmarks map[string]record `json:"benchmarks"`
}

// Per-metric multiplicative tolerances. Allocation counts from a
// deterministic simulation see only small GC/sync.Pool jitter, so
// memory metrics get 10%; wall-clock on a shared CI runner does not,
// so ns/op gets 2.5x — a smoke alarm for lost fast paths, not a
// microbenchmark referee. 0-valued records stay strict under any
// slack because 0*k is still 0.
const (
	memSlack  = 1.10
	timeSlack = 2.50
)

// benchName matches a benchmark result line and captures the full
// name; gomaxprocsSuffix strips the trailing -N go test appends when
// GOMAXPROCS > 1. The suffix is only stripped as a fallback when the
// full name has no snapshot entry, because it is syntactically
// indistinguishable from a sub-benchmark name that happens to end in
// digits (BenchmarkBroadcastDomain/clients-250 is a sub-benchmark on a
// single-core runner, not clients-2 at GOMAXPROCS=50).
var (
	benchName        = regexp.MustCompile(`^(Benchmark\S+)\s`)
	gomaxprocsSuffix = regexp.MustCompile(`-\d+$`)
)

// metric describes one gated metric: how to find it on a result line,
// how to read it out of a snapshot measure, and how much headroom the
// recorded value gets.
type metric struct {
	name  string
	line  *regexp.Regexp
	get   func(*measure) *float64
	slack float64
}

var metrics = []metric{
	{
		name:  "ns/op",
		line:  regexp.MustCompile(`(\d+(?:\.\d+)?) ns/op`),
		get:   func(m *measure) *float64 { return m.NsOp },
		slack: timeSlack,
	},
	{
		name:  "allocs/op",
		line:  regexp.MustCompile(`(\d+(?:\.\d+)?) allocs/op`),
		get:   func(m *measure) *float64 { return m.AllocsOp },
		slack: memSlack,
	},
	{
		name:  "bytes/client",
		line:  regexp.MustCompile(`(\d+(?:\.\d+)?) bytes/client`),
		get:   func(m *measure) *float64 { return m.BytesClient },
		slack: memSlack,
	},
}

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: go test -bench ... -benchmem | benchgate BENCH_N.json [BENCH_M.json ...]")
		os.Exit(2)
	}

	// want[benchmark][metric] = recorded limit.
	want := make(map[string]map[string]float64)
	for _, path := range os.Args[1:] {
		raw, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
			os.Exit(2)
		}
		var snap snapshot
		if err := json.Unmarshal(raw, &snap); err != nil {
			fmt.Fprintf(os.Stderr, "benchgate: parsing %s: %v\n", path, err)
			os.Exit(2)
		}
		for name, rec := range snap.Benchmarks {
			m := rec.After
			if m == nil {
				m = rec.Before
			}
			if m == nil {
				continue
			}
			for _, g := range metrics {
				if v := g.get(m); v != nil {
					if want[name] == nil {
						want[name] = make(map[string]float64)
					}
					want[name][g.name] = *v
				}
			}
		}
	}
	if len(want) == 0 {
		fmt.Fprintln(os.Stderr, "benchgate: snapshots record no gateable benchmarks")
		os.Exit(2)
	}

	failed := false
	seen := make(map[string]map[string]bool)
	sc := bufio.NewScanner(os.Stdin)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line) // pass the bench output through for the CI log
		nm := benchName.FindStringSubmatch(line)
		if nm == nil {
			continue
		}
		name := nm[1]
		limits, gated := want[name]
		if !gated {
			// Retry with the -GOMAXPROCS suffix stripped; keep the
			// snapshot-side name so the seen bookkeeping lines up.
			name = gomaxprocsSuffix.ReplaceAllString(name, "")
			limits, gated = want[name]
		}
		if !gated {
			continue
		}
		if seen[name] == nil {
			seen[name] = make(map[string]bool)
		}
		for _, g := range metrics {
			limit, ok := limits[g.name]
			if !ok {
				continue
			}
			m := g.line.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			seen[name][g.name] = true
			got, err := strconv.ParseFloat(m[1], 64)
			if err != nil {
				fmt.Fprintf(os.Stderr, "benchgate: %s: unparsable %s %q\n", name, g.name, m[1])
				failed = true
				continue
			}
			if got > limit*g.slack {
				fmt.Fprintf(os.Stderr, "benchgate: FAIL %s: %.2f %s exceeds snapshot %.2f (x%.2f slack)\n",
					name, got, g.name, limit, g.slack)
				failed = true
			} else {
				fmt.Fprintf(os.Stderr, "benchgate: ok   %s: %.2f %s (snapshot %.2f, x%.2f slack)\n",
					name, got, g.name, limit, g.slack)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: reading stdin: %v\n", err)
		os.Exit(2)
	}
	for name, limits := range want {
		for mname := range limits {
			if !seen[name][mname] {
				fmt.Fprintf(os.Stderr, "benchgate: FAIL %s: %s recorded in snapshot but absent from bench output\n", name, mname)
				failed = true
			}
		}
	}
	if failed {
		os.Exit(1)
	}
}
