package repro_test

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/dnswire"
	"repro/internal/httpsim"
	"repro/internal/profiles"
	"repro/internal/testbed"
)

// The intervention in one screenful: an RFC 8925 phone browses an
// IPv4-only site through NAT64 while an IPv4-only console is told why
// it has no internet.
func Example_intervention() {
	tb := testbed.New(testbed.DefaultOptions())
	phone := tb.AddClient("phone", profiles.Android())
	console := tb.AddClient("console", profiles.NintendoSwitch())

	r, _ := httpsim.Browse(phone, "http://sc24.supercomputing.org/")
	fmt.Printf("phone used %s -> %s", r.UsedAddr, r.Response.Body)

	r, _ = httpsim.Browse(console, "http://sc24.supercomputing.org/")
	fmt.Printf("console informed: %v\n", strings.Contains(string(r.Response.Body), "lack of IPv6 support"))

	// Output:
	// phone used 64:ff9b::be5c:9e04 -> SC24 | The International Conference for HPC
	// console informed: true
}

// The Fig. 9 pathology: nslookup shows a fabricated answer for a
// non-existent suffixed name while getaddrinfo resolves correctly.
func Example_nonexistentFQDN() {
	tb := testbed.New(testbed.DefaultOptions())
	c := tb.AddClient("win11", profiles.Windows11())

	ns, _ := c.NSLookup("vpn.anl.gov", dnswire.TypeA)
	fmt.Printf("nslookup: %s -> %v\n", ns.Name, ns.Addrs)

	res, _ := c.Lookup("vpn.anl.gov")
	best, _ := res.BestAddr()
	fmt.Printf("getaddrinfo: %v\n", best)

	// Output:
	// nslookup: vpn.anl.gov.rfc8925.com. -> [23.153.8.71]
	// getaddrinfo: 64:ff9b::82ca:e4fd
}

// Evaluate classifies what a device experiences on the testbed.
func ExampleEvaluate() {
	tb := testbed.New(testbed.DefaultOptions())
	c := tb.AddClient("xp", profiles.WindowsXP())
	o := core.Evaluate(tb, c)
	fmt.Println(o.Class, o.FixedScore)
	// Output: internet-via-ipv6 9/10
}

// A two-tier world built from a spec: two access switches of four
// registered clients each trunk into the managed switch. A registered
// client is a ~32-byte table row until Materialize builds the full
// host; Park returns it to its row, so the active working set stays
// tiny no matter how many clients the spec registers.
func Example_fabricTopology() {
	spec := testbed.FabricTopology(testbed.DefaultOptions(), 2, 4)
	tb, err := testbed.Build(spec)
	if err != nil {
		fmt.Println("build:", err)
		return
	}
	defer tb.Close()

	fb := tb.Fabric
	fmt.Printf("registered %d clients on %d access switches\n",
		fb.Table.Len(), len(fb.Switches))

	for sw := 0; sw < 2; sw++ {
		row, _ := fb.Rows(sw)
		c := fb.Materialize(row, fmt.Sprintf("phone-%d", sw), profiles.Android())
		r, _ := httpsim.Browse(c, "http://sc24.supercomputing.org/")
		fmt.Printf("domain %d browsed over IPv6: %v\n", fb.DomainOf(row), r.UsedAddr.Is6())
		fb.Park(row)
	}
	fmt.Printf("active after parking: %d\n", fb.ActiveCount())

	// Output:
	// registered 8 clients on 2 access switches
	// domain 0 browsed over IPv6: true
	// domain 1 browsed over IPv6: true
	// active after parking: 0
}
