package repro_test

import (
	"fmt"
	"net/netip"
	"runtime"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dhcp4"
	"repro/internal/dns"
	"repro/internal/dns64"
	"repro/internal/dnspoison"
	"repro/internal/dnswire"
	"repro/internal/httpsim"
	"repro/internal/nat64"
	"repro/internal/netsim"
	"repro/internal/packet"
	"repro/internal/portal"
	"repro/internal/profiles"
	"repro/internal/scenario"
	"repro/internal/testbed"
)

// Each benchmark regenerates one figure/table of the paper's evaluation
// (see DESIGN.md §4 for the index). The measured quantity is the full
// simulated workload for that experiment, so relative costs compare the
// interventions rather than wall-clock network behaviour.

func fetcher(tb *testbed.Testbed, c int) portal.Fetcher {
	return func(url string) (*httpsim.Response, error) {
		r, err := httpsim.Browse(tb.Clients[c], url)
		if err != nil {
			return nil, err
		}
		return r.Response, nil
	}
}

// quiesce advances virtual time between iterations so NAT sessions,
// DNS cache entries and closing TCP bindings expire the way they would
// between real visitors — without it, sustained benchmark load would
// (realistically!) exhaust the translators' port pools.
func quiesce(tb *testbed.Testbed) {
	tb.Net.RunFor(6 * time.Minute)
}

// BenchmarkFig2EcholinkLiteral: the IPv4-literal application exchange on
// a dual-stack client (the SC23 count-polluting workload).
func BenchmarkFig2EcholinkLiteral(b *testing.B) {
	b.ReportAllocs()
	tb := testbed.New(testbed.DefaultOptions())
	c := tb.AddClient("ham", profiles.Windows10())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Query(testbed.EcholinkV4, testbed.EcholinkPort, []byte("cq"), time.Second); err != nil {
			b.Fatal(err)
		}
		quiesce(tb)
	}
}

// BenchmarkFig3GatewayRA: client bring-up plus first resolution through
// the switch-RA-rescued RDNSS path.
func BenchmarkFig3GatewayRA(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tb := testbed.New(testbed.DefaultOptions())
		c := tb.AddClient("probe", profiles.IPv6OnlyLinux())
		if _, err := c.Lookup("sc24.supercomputing.org"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig4TestbedBringup: assembling the full Fig. 4 topology and
// bringing up one client of each major class.
func BenchmarkFig4TestbedBringup(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tb := testbed.New(testbed.DefaultOptions())
		tb.AddClient("mac", profiles.MacOS())
		tb.AddClient("win", profiles.Windows10())
		tb.AddClient("console", profiles.NintendoSwitch())
	}
}

// BenchmarkFig5ErroneousScore: the full five-subtest mirror run plus both
// scorings for the IPv6-disabled client behind wildcard poisoning.
func BenchmarkFig5ErroneousScore(b *testing.B) {
	b.ReportAllocs()
	opt := testbed.DefaultOptions()
	opt.RedirectV4 = testbed.MirrorV4
	tb := testbed.New(opt)
	tb.AddClient("nov6", profiles.Windows10NoV6())
	f := fetcher(tb, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := portal.Run(f, tb.Mirror)
		if portal.ScoreBuggy(res).Points != 10 {
			b.Fatal("lost the erroneous 10/10")
		}
		quiesce(tb)
	}
}

// BenchmarkFig6SwitchIntervention: an IPv4-only device browsing into the
// intervention page.
func BenchmarkFig6SwitchIntervention(b *testing.B) {
	b.ReportAllocs()
	tb := testbed.New(testbed.DefaultOptions())
	c := tb.AddClient("console", profiles.NintendoSwitch())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := httpsim.Browse(c, "http://sc24.supercomputing.org/"); err != nil {
			b.Fatal(err)
		}
		quiesce(tb)
	}
}

// BenchmarkFig7WindowsXP: the XP path — AAAA through the poisoned
// resolver's DNS64 forward, then a NAT64 page fetch.
func BenchmarkFig7WindowsXP(b *testing.B) {
	b.ReportAllocs()
	tb := testbed.New(testbed.DefaultOptions())
	xp := tb.AddClient("xp", profiles.WindowsXP())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := httpsim.Browse(xp, "http://sc24.supercomputing.org/"); err != nil {
			b.Fatal(err)
		}
		quiesce(tb)
	}
}

// BenchmarkFig8VPNSplitTunnel: one split-tunneled VTC fetch plus one
// tunneled fetch.
func BenchmarkFig8VPNSplitTunnel(b *testing.B) {
	b.ReportAllocs()
	tb := testbed.New(testbed.DefaultOptions())
	tb.InstallVPN()
	c := tb.AddClient("laptop", profiles.Windows10())
	vc := tb.NewVPNClient(c)
	if err := vc.Connect(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := vc.Fetch("http://" + testbed.VTCV4.String() + "/"); err != nil {
			b.Fatal(err)
		}
		if _, err := vc.Fetch("http://ip6.me/"); err != nil {
			b.Fatal(err)
		}
		quiesce(tb)
	}
}

// BenchmarkFig9NonexistentFQDN: the nslookup suffix-first pathology.
func BenchmarkFig9NonexistentFQDN(b *testing.B) {
	b.ReportAllocs()
	tb := testbed.New(testbed.DefaultOptions())
	c := tb.AddClient("win11", profiles.Windows11())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ns, err := c.NSLookup("vpn.anl.gov", dnswire.TypeA)
		if err != nil {
			b.Fatal(err)
		}
		if ns.Name != "vpn.anl.gov.rfc8925.com." {
			b.Fatal("pathology vanished")
		}
	}
}

// BenchmarkFig10RDNSSPreference: a resolution on the RDNSS-preferring
// profile (never touching the poisoned server).
func BenchmarkFig10RDNSSPreference(b *testing.B) {
	b.ReportAllocs()
	tb := testbed.New(testbed.DefaultOptions())
	c := tb.AddClient("win10", profiles.Windows10())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Lookup("sc24.supercomputing.org"); err != nil {
			b.Fatal(err)
		}
		quiesce(tb)
	}
	if len(tb.PoisonLog.Queries) != 0 {
		b.Fatal("poisoned server was consulted")
	}
}

// BenchmarkFig11VPNScore: the full mirror run over the tunnel.
func BenchmarkFig11VPNScore(b *testing.B) {
	b.ReportAllocs()
	tb := testbed.New(testbed.DefaultOptions())
	tb.InstallVPN()
	c := tb.AddClient("laptop", profiles.Windows10())
	vc := tb.NewVPNClient(c)
	if err := vc.Connect(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := portal.Run(vc.Fetch, tb.Mirror)
		if portal.ScoreFixed(res).Points != 0 {
			b.Fatal("VPN score should be 0/10")
		}
		quiesce(tb)
	}
}

// BenchmarkTableAClientMatrix: the full §V compatibility matrix (eleven
// testbeds, one per profile).
func BenchmarkTableAClientMatrix(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rows := core.Matrix(testbed.DefaultOptions())
		if len(rows) != len(profiles.All()) {
			b.Fatal("short matrix")
		}
	}
}

// BenchmarkTableBClientCounting: a 20-device conference floor under the
// SC24 intervention.
func BenchmarkTableBClientCounting(b *testing.B) {
	b.ReportAllocs()
	devices := scenario.Population(1, 20, scenario.DefaultMix())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep := scenario.Run(testbed.New(testbed.DefaultOptions()), devices)
		if rep.Joined != 20 {
			b.Fatal("population lost")
		}
	}
}

// BenchmarkAblationPoisonerComparison: per-query cost of the dnsmasq
// wildcard vs the RPZ existence check over a 10k-name query mix (half
// existing, half NXDOMAIN) — the §VI complexity trade.
func BenchmarkAblationPoisonerComparison(b *testing.B) {
	b.ReportAllocs()
	zone := dns.NewZone("mix.example")
	const existing = 5000
	for i := 0; i < existing; i++ {
		if err := zone.AddA(hostLabel(i), netip.MustParseAddr("198.51.100.1"), 60); err != nil {
			b.Fatal(err)
		}
	}
	upstream := dns64.New(zone)
	queries := make([]dnswire.Question, 0, 10000)
	for i := 0; i < 10000; i++ {
		// Even i: an existing name; odd i: a non-existent one.
		name := hostLabel(i/2) + ".mix.example"
		if i%2 == 1 {
			name = "ghost-" + hostLabel(i) + ".mix.example"
		}
		// Wire-parsed questions are always canonical (readName lower-cases
		// and dot-terminates), so the per-query cost is measured over the
		// same names a real server loop would see.
		queries = append(queries, dnswire.Question{Name: dnswire.CanonicalName(name), Type: dnswire.TypeA, Class: dnswire.ClassIN})
	}
	b.Run("wildcard", func(b *testing.B) {
		b.ReportAllocs()
		w := dnspoison.NewWildcard(upstream)
		for i := 0; i < b.N; i++ {
			if _, err := w.Resolve(queries[i%len(queries)]); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("rpz", func(b *testing.B) {
		b.ReportAllocs()
		r := dnspoison.NewRPZ(upstream)
		for i := 0; i < b.N; i++ {
			if _, err := r.Resolve(queries[i%len(queries)]); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func hostLabel(i int) string {
	const digits = "abcdefghij"
	if i == 0 {
		return "h" + string(digits[0])
	}
	s := "h"
	for i > 0 {
		s += string(digits[i%10])
		i /= 10
	}
	return s
}

// BenchmarkDHCPDORA: a full discover/offer/request/ack exchange against
// the option-108 server (message-level).
func BenchmarkDHCPDORA(b *testing.B) {
	b.ReportAllocs()
	now := time.Date(2024, 11, 17, 9, 0, 0, 0, time.UTC)
	srv, err := dhcp4.NewServer(dhcp4.ServerConfig{
		ServerID:   netip.MustParseAddr("192.168.12.250"),
		PoolStart:  netip.MustParseAddr("192.168.12.100"),
		PoolEnd:    netip.MustParseAddr("192.168.12.199"),
		SubnetMask: netip.MustParseAddr("255.255.255.0"),
		LeaseTime:  time.Hour,
	}, func() time.Time { return now })
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		chaddr := [6]byte{2, 0, 0, byte(i >> 16), byte(i >> 8), byte(i)}
		d := dhcp4.NewMessage(dhcp4.OpRequest, uint32(i), chaddr)
		d.SetType(dhcp4.Discover)
		offer := srv.Handle(d)
		if offer == nil {
			b.Fatal("no offer")
		}
		r := dhcp4.NewMessage(dhcp4.OpRequest, uint32(i), chaddr)
		r.SetType(dhcp4.Request)
		r.SetIPv4Option(dhcp4.OptRequestedIP, offer.YIAddr)
		r.SetIPv4Option(dhcp4.OptServerID, netip.MustParseAddr("192.168.12.250"))
		if ack := srv.Handle(r); ack == nil || ack.Type() != dhcp4.ACK {
			b.Fatal("no ack")
		}
		rel := dhcp4.NewMessage(dhcp4.OpRequest, uint32(i), chaddr)
		rel.SetType(dhcp4.Release)
		srv.Handle(rel)
	}
}

// BenchmarkAblationScoringLogic: the two scorers over a fixed result set.
func BenchmarkAblationScoringLogic(b *testing.B) {
	b.ReportAllocs()
	res := &portal.Results{}
	for _, n := range portal.SubtestNames {
		res.Subs = append(res.Subs, portal.SubResult{Name: n, Fetched: true, Family: "IPv6"})
	}
	b.Run("buggy", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			portal.ScoreBuggy(res)
		}
	})
	b.Run("fixed", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			portal.ScoreFixed(res)
		}
	})
}

// --- substrate microbenchmarks ---------------------------------------------

func BenchmarkDNSMessageMarshalParse(b *testing.B) {
	b.ReportAllocs()
	msg := dnswire.NewQuery(1, "sc24.supercomputing.org", dnswire.TypeAAAA)
	for i := 0; i < b.N; i++ {
		wire, err := msg.Marshal()
		if err != nil {
			b.Fatal(err)
		}
		if _, err := dnswire.Parse(wire); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDNS64Synthesis(b *testing.B) {
	b.ReportAllocs()
	r := dns64.New(dns.NewStatic(
		dnswire.RR{Name: "v4only.example", Type: dnswire.TypeA, TTL: 60, Addr: netip.MustParseAddr("190.92.158.4")},
	))
	q := dnswire.Question{Name: "v4only.example", Type: dnswire.TypeAAAA, Class: dnswire.ClassIN}
	for i := 0; i < b.N; i++ {
		if _, err := r.Resolve(q); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkNAT64UDPTranslation(b *testing.B) {
	b.ReportAllocs()
	now := time.Date(2024, 11, 17, 9, 0, 0, 0, time.UTC)
	tr, err := nat64.New(nat64.Config{
		Prefix:   dns64.WellKnownPrefix,
		PublicV4: netip.MustParseAddr("203.0.113.1"),
	}, func() time.Time { return now })
	if err != nil {
		b.Fatal(err)
	}
	src := netip.MustParseAddr("2607:fb90:9bda:a425::50")
	dst, _ := dns64.Synthesize(dns64.WellKnownPrefix, netip.MustParseAddr("190.92.158.4"))
	pkt := &packet.IPv6{
		NextHeader: packet.ProtoUDP, HopLimit: 64, Src: src, Dst: dst,
		Payload: (&packet.UDP{SrcPort: 5000, DstPort: 53, Payload: []byte("query")}).Marshal(src, dst),
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tr.TranslateV6ToV4(pkt); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkIPv4Checksum(b *testing.B) {
	b.ReportAllocs()
	p := &packet.IPv4{Protocol: packet.ProtoUDP,
		Src: netip.MustParseAddr("192.168.12.10"), Dst: netip.MustParseAddr("23.153.8.71"),
		Payload: make([]byte, 512)}
	wire := p.Marshal()
	b.SetBytes(int64(len(wire)))
	for i := 0; i < b.N; i++ {
		if _, err := packet.ParseIPv4(wire); err != nil {
			b.Fatal(err)
		}
	}
}

// --- scale benchmarks -------------------------------------------------------

// BenchmarkScaleThousandClients is the paper-scale sweep the NAT64/DNS64
// measurement studies (arXiv:2311.04181, arXiv:2402.14632) run against
// real resolvers: a thousand clients brought up on the full Fig. 4
// topology, each resolving unique names through the poisoned/DNS64
// resolver chain. The healthy cache is capacity-bounded, so memory stays
// capped no matter how many unique names the population floods it with.
func BenchmarkScaleThousandClients(b *testing.B) {
	b.ReportAllocs()
	const (
		nClients       = 1000
		namesPerClient = 4
		cacheBound     = 4096
	)
	for i := 0; i < b.N; i++ {
		tb := testbed.New(testbed.DefaultOptions())
		tb.HealthyCache.MaxEntries = cacheBound
		for c := 0; c < nClients; c++ {
			tb.AddClient(fmt.Sprintf("c%d", c), profiles.Windows10())
		}
		for ci, c := range tb.Clients {
			for j := 0; j < namesPerClient; j++ {
				// Unique, mostly-nonexistent names: the worst case for an
				// unbounded cache (one negative entry per name, forever).
				_, _ = c.Lookup(fmt.Sprintf("h%d-%d.sc24.supercomputing.org", ci, j))
			}
		}
		if got := tb.HealthyCache.Len(); got > cacheBound {
			b.Fatalf("healthy cache exceeded its bound: %d entries > %d", got, cacheBound)
		}
		st := tb.Net.Stats()
		b.ReportMetric(float64(st.FramesDelivered), "frames/op")
		b.ReportMetric(float64(st.AllocsAvoided), "payload_allocs_avoided/op")
	}
}

// BenchmarkBroadcastDomain isolates the switch flood fast path: N
// clients on one switch, one broadcast per iteration delivered to the
// other N-1 ports. With the shared-payload fan-out a flood costs one
// event and one payload copy regardless of port count, so allocs/op is
// O(1) in N and ns/op grows only with the (unavoidable) N handler
// invocations — the flood path is ~linear where the per-port event loop
// made it quadratic across a scenario's lifetime of floods.
func BenchmarkBroadcastDomain(b *testing.B) {
	sink := netsim.FrameHandlerFunc(func(_ *netsim.NIC, _ netsim.Frame) {})
	for _, n := range []int{250, 1000, 4000} {
		b.Run(fmt.Sprintf("clients-%d", n), func(b *testing.B) {
			b.ReportAllocs()
			net := netsim.NewNetwork()
			sw := netsim.NewSwitch(net, "sw")
			nics := make([]*netsim.NIC, n)
			for i := range nics {
				nics[i] = net.NewNIC(fmt.Sprintf("c%d", i), sink)
				nics[i].RestrictFlooding()
				nics[i].AddEtherTypeInterest(netsim.EtherTypeIPv4)
				sw.AttachPort(nics[i])
			}
			payload := make([]byte, 300) // a DHCPv4 DISCOVER-sized broadcast
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				nics[i%n].Transmit(netsim.Frame{
					Dst: netsim.Broadcast, EtherType: netsim.EtherTypeIPv4, Payload: payload,
				})
				net.Run(0)
			}
			b.StopTimer()
			st := net.Stats()
			b.ReportMetric(float64(st.FramesDelivered)/float64(b.N), "frames/op")
			if st.FanoutEvents != uint64(b.N) {
				b.Fatalf("floods off the fan-out path: %d events for %d floods", st.FanoutEvents, b.N)
			}
		})
	}
}

// BenchmarkScenarioSharded measures the sharded execution engine: a
// 1000-device conference-floor population run serially on one world vs
// split across 8 independently built worlds. The win is algorithmic,
// not just parallel: broadcast-domain work (ARP/DHCP flooding through
// the learning switch, RA beacons over the longer total virtual
// runtime) is quadratic in clients-per-switch, so 8 worlds of 125
// clients do roughly 1/8 of the flooding one 1000-client world does —
// the speedup survives even on a single core.
func BenchmarkScenarioSharded(b *testing.B) {
	const n = 1000
	devices := scenario.Population(1, n, scenario.DefaultMix())
	fac := testbed.Factory{Spec: testbed.ScaleTopology(testbed.DefaultOptions(), n)}

	b.Run("serial", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			tb, err := fac.Build()
			if err != nil {
				b.Fatal(err)
			}
			rep := scenario.Run(tb, devices)
			tb.Close()
			if rep.Joined != n {
				b.Fatal("population lost")
			}
		}
	})
	b.Run("sharded-8", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			rep, err := scenario.RunSharded(fac.Build, devices, scenario.ShardOptions{Shards: 8, Seed: 1})
			if err != nil {
				b.Fatal(err)
			}
			if rep.Joined != n {
				b.Fatal("population lost")
			}
		}
	})
}

// BenchmarkHeavyTraffic measures the unicast/flow fast path (DESIGN.md
// §3d) from two angles, each as a rings-vs-legacy pair so the ring win
// is read directly off the sub-benchmark ratio:
//
//   - unicast-*: the tentpole microworld — 500 point-to-point host
//     pairs (1000 NICs) each bursting 8 frames per op, the shape a TCP
//     send produces when it segments a large write at one virtual
//     instant. Legacy pays one heap push + pop per frame against a
//     4000-event heap; rings pay one drain event per link and amortize
//     the rest. Payloads are kept small enough that a whole round fits
//     the arena's retired-chunk budget, so the timed loop measures
//     scheduler cost, not payload copying — and the warmed-up ring
//     path must not allocate at all.
//   - flows-*: end-to-end — a conference-floor population streaming
//     paced CDN flows through DNS64+NAT64/CLAT/NAT44 via the scenario
//     traffic layer, reporting simulated flows per wall-clock minute.
//
// BENCH_4.json records the measured ratios; CI regresses allocs/op
// against it.
func BenchmarkHeavyTraffic(b *testing.B) {
	const (
		pairs = 500
		burst = 8
	)
	// 64 B × 4000 frames/round stays inside the arena's 8 retired 32 KiB
	// chunks, so recycling between rounds feeds every copy from the pool.
	payload := make([]byte, 64)
	sink := netsim.FrameHandlerFunc(func(_ *netsim.NIC, _ netsim.Frame) {})

	unicast := func(b *testing.B, rings bool) {
		b.ReportAllocs()
		net := netsim.NewNetwork()
		net.SetUnicastRings(rings)
		tx := make([]*netsim.NIC, pairs)
		rx := make([]*netsim.NIC, pairs)
		for i := 0; i < pairs; i++ {
			tx[i] = net.NewNIC(fmt.Sprintf("a%d", i), sink)
			rx[i] = net.NewNIC(fmt.Sprintf("z%d", i), sink)
			net.Connect(tx[i], rx[i])
		}
		round := func() {
			for i, nc := range tx {
				for k := 0; k < burst; k++ {
					nc.Transmit(netsim.Frame{Dst: rx[i].MAC(), EtherType: netsim.EtherTypeIPv6, Payload: payload})
				}
			}
			net.Run(0)
		}
		// One warm-up round allocates the rings, grows the event heap and
		// primes the arena pool, so the timed loop measures the steady
		// state (and pins 0 allocs/op on the ring path).
		round()
		net.RecycleArena()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			round()
			net.RecycleArena()
		}
		b.StopTimer()
		st := net.Stats()
		b.ReportMetric(float64(st.FramesDelivered)/float64(b.N+1), "frames/op")
		if rings {
			if st.UnicastRingFrames != st.FramesDelivered {
				b.Fatalf("frames off the ring path: %d of %d", st.FramesDelivered-st.UnicastRingFrames, st.FramesDelivered)
			}
			b.ReportMetric(float64(st.UnicastRingFrames)/float64(st.UnicastRingBatches), "frames/batch")
		} else if st.UnicastRingFrames != 0 {
			b.Fatalf("legacy run used rings: %d frames", st.UnicastRingFrames)
		}
	}
	b.Run("unicast-legacy", func(b *testing.B) { unicast(b, false) })
	b.Run("unicast-rings", func(b *testing.B) { unicast(b, true) })

	const devs = 24
	devices := scenario.Population(1, devs, scenario.DefaultMix())
	fac := testbed.Factory{Spec: testbed.ScaleTopology(testbed.DefaultOptions(), devs)}
	traffic := &scenario.TrafficOptions{
		FlowsPerDevice: 8,
		FlowBytes:      12 << 10,
		Pace:           time.Millisecond,
		ChurnFlows:     2,
	}
	flows := func(b *testing.B, rings bool) {
		b.ReportAllocs()
		total := 0
		for i := 0; i < b.N; i++ {
			tb, err := fac.Build()
			if err != nil {
				b.Fatal(err)
			}
			tb.Net.SetUnicastRings(rings)
			rep := scenario.RunWith(tb, devices, scenario.RunOptions{Traffic: traffic})
			tb.Close()
			if rep.Traffic == nil || rep.Traffic.Flows.Completed == 0 {
				b.Fatal("population streamed nothing")
			}
			total += rep.Traffic.Flows.Opened
		}
		b.StopTimer()
		b.ReportMetric(float64(total)/float64(b.N), "flows/op")
		b.ReportMetric(float64(total)/b.Elapsed().Seconds()*60, "flows/min")
	}
	b.Run("flows-legacy", func(b *testing.B) { flows(b, false) })
	b.Run("flows-rings", func(b *testing.B) { flows(b, true) })
}

// BenchmarkFabricScale measures the hierarchical fabric tier and the
// per-host memory diet (DESIGN.md §3e) at the scale they exist for:
//
//   - million-clients: one process builds a 1000-access-switch ×
//     1000-client fabric world — a million registered clients — and
//     reports the marginal heap cost per registered client (GC-settled
//     HeapAlloc delta across the build). A registered client is a
//     struct-of-arrays table row, so the figure must stay in the
//     hundreds of bytes, not the kilobytes a full Host costs; the
//     benchmark fails outright past 512 B/client. A sample of clients
//     across domains then materializes, browses through DNS64+NAT64
//     and parks again, proving the world is live, after which the
//     active working set must be back to zero.
//   - subtree-sharded: the fabric execution engine end-to-end — an
//     8-domain world run as 4 subtree shards, each shard rebuilding
//     its access switches as an independent world.
//
// BENCH_5.json records the measured bytes/client; CI regresses it (and
// allocs/op) against the snapshot via tools/benchgate.
func BenchmarkFabricScale(b *testing.B) {
	b.Run("million-clients", func(b *testing.B) {
		b.ReportAllocs()
		const (
			access     = 1000
			clientsPer = 1000
			sample     = 8
		)
		// One iteration lives in its own function so the world is
		// unreachable — not merely dead in a reused stack slot — by the
		// time the next iteration's baseline GC runs.
		iteration := func() float64 {
			// Double GC settles sync.Pool victim caches from the previous
			// iteration before the baseline sample.
			runtime.GC()
			runtime.GC()
			var before runtime.MemStats
			runtime.ReadMemStats(&before)

			tb, err := testbed.Build(testbed.FabricTopology(testbed.DefaultOptions(), access, clientsPer))
			if err != nil {
				b.Fatal(err)
			}
			fb := tb.Fabric
			if got := fb.Table.Len(); got != access*clientsPer {
				b.Fatalf("registered %d clients, want %d", got, access*clientsPer)
			}

			runtime.GC()
			var after runtime.MemStats
			runtime.ReadMemStats(&after)
			perClient := float64(int64(after.HeapAlloc)-int64(before.HeapAlloc)) / float64(access*clientsPer)
			if perClient > 512 {
				b.Fatalf("memory diet broken: %.1f bytes/client (limit 512)", perClient)
			}

			// Prove the million-row world is live: bring a spread of
			// clients up through the full option-108 → DNS64 → NAT64
			// pipeline, then park them all.
			for s := 0; s < sample; s++ {
				sw := s * access / sample
				row, _ := fb.Rows(sw)
				c := fb.Materialize(row, fmt.Sprintf("bench-d%d", sw), profiles.MacOS())
				if r, err := httpsim.Browse(c, "http://sc24.supercomputing.org/"); err != nil || r.Response.Status != 200 {
					b.Fatalf("domain %d client browse: status=%v err=%v", sw, r, err)
				}
				fb.Park(row)
			}
			if fb.ActiveCount() != 0 {
				b.Fatalf("%d clients still materialized after parking", fb.ActiveCount())
			}
			tb.Close()
			return perClient
		}
		total := 0.0
		for i := 0; i < b.N; i++ {
			total += iteration()
		}
		b.ReportMetric(total/float64(b.N), "bytes/client")
	})
	b.Run("subtree-sharded", func(b *testing.B) {
		b.ReportAllocs()
		spec := testbed.FabricTopology(testbed.DefaultOptions(), 8, 1000)
		for i := 0; i < b.N; i++ {
			rep, err := scenario.RunFabric(spec, scenario.FabricOptions{
				Seed: 1, ActorsPerDomain: 2, Shards: 4,
			})
			if err != nil {
				b.Fatal(err)
			}
			if rep.Joined != 16 {
				b.Fatalf("joined %d, want 16", rep.Joined)
			}
		}
	})
}

// BenchmarkChaos measures the fault-injected hot path: a 64-device
// population on 10%-loss impaired links, each device churned through one
// gateway reboot and probed back to convergence. Relative to the clean
// BenchmarkScenarioSharded run, the delta is the cost of the impairment
// PRNG draws, the retry/backoff machinery and the renumbering traffic.
func BenchmarkChaos(b *testing.B) {
	b.ReportAllocs()
	const n = 64
	devices := scenario.Population(1, n, scenario.DefaultMix())
	spec := scenario.ChaosSpec(1, n, 0, 0.10, 0)
	fac := testbed.Factory{Spec: spec}
	opt := scenario.ShardOptions{
		Shards: 4, Seed: 1,
		Run: scenario.RunOptions{RebootsPerDevice: 1, ConvergeTimeout: 30 * time.Second},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := scenario.RunSharded(fac.Build, devices, opt)
		if err != nil {
			b.Fatal(err)
		}
		if rep.Joined != n {
			b.Fatal("population lost")
		}
	}
}

// BenchmarkMillionScenario is the streaming engine's capstone: a full
// scenario run over the 1,000,000-registered-client fabric world —
// every one of the 1000 access domains brings a device through the
// option-108 → DNS64 → NAT64 workload — with per-device rows streamed
// out through a RowSink and DiscardDevices on, so the run retains O(1)
// aggregate state instead of an O(devices) report. Two hard in-
// benchmark memory ceilings enforce the bounded-RSS claim: live heap
// sampled mid-run (every 100th row) must stay under 192 MB, and the
// GC-settled heap with the world still alive in its pool must stay
// under 64 MB — a retained per-device slice or per-trial garbage
// pileup fails the benchmark outright, not just a snapshot diff.
// BENCH_6.json records the measured figures; CI regresses allocs/op
// against it.
func BenchmarkMillionScenario(b *testing.B) {
	b.ReportAllocs()
	const (
		access     = 1000
		clientsPer = 1000
	)
	spec := testbed.FabricTopology(testbed.DefaultOptions(), access, clientsPer)
	var peakMB, settledMB float64
	for i := 0; i < b.N; i++ {
		runtime.GC()
		runtime.GC()
		var before runtime.MemStats
		runtime.ReadMemStats(&before)

		pool := scenario.NewWorldPool()
		rows, internet := 0, 0
		peak := uint64(0)
		sink := scenario.RowSinkFunc(func(r scenario.Row) {
			rows++
			if r.Internet {
				internet++
			}
			if rows%100 == 0 {
				var m runtime.MemStats
				runtime.ReadMemStats(&m)
				if m.HeapAlloc > peak {
					peak = m.HeapAlloc
				}
			}
		})
		rep, err := scenario.RunFabric(spec, scenario.FabricOptions{
			Seed:            1,
			ActorsPerDomain: 1,
			Pool:            pool,
			Run:             scenario.RunOptions{Sink: sink, DiscardDevices: true},
		})
		if err != nil {
			b.Fatal(err)
		}
		if rep.Joined != access || rows != access {
			b.Fatalf("joined=%d rows=%d, want %d (every domain reporting)", rep.Joined, rows, access)
		}
		if len(rep.Devices) != 0 {
			b.Fatalf("DiscardDevices run retained %d devices", len(rep.Devices))
		}
		if internet == 0 || rep.InternetOK != internet {
			b.Fatalf("streamed internet=%d, report says %d", internet, rep.InternetOK)
		}

		// Settled ceiling: world (pooled, alive) + report + logs.
		runtime.GC()
		var after runtime.MemStats
		runtime.ReadMemStats(&after)
		settled := float64(int64(after.HeapAlloc)-int64(before.HeapAlloc)) / (1 << 20)
		live := float64(int64(peak)-int64(before.HeapAlloc)) / (1 << 20)
		if live > 192 {
			b.Fatalf("bounded-RSS broken: %.1f MB live heap mid-run (ceiling 192)", live)
		}
		if settled > 64 {
			b.Fatalf("bounded-RSS broken: %.1f MB settled heap post-run (ceiling 64)", settled)
		}
		if live > peakMB {
			peakMB = live
		}
		if settled > settledMB {
			settledMB = settled
		}
		pool.Close()
	}
	b.ReportMetric(peakMB, "peakheap-MB")
	b.ReportMetric(settledMB, "settledheap-MB")
}

// BenchmarkWorldPoolSweep measures what pooled world reuse buys a sweep:
// the same 16-shard cell (one device per world — the repeated-probe
// shape pathology fingerprints and grid repeats produce) run again and
// again, fresh-building every world per run versus checking worlds out
// of a scenario.WorldPool (Checkpoint once, Reset per reuse). The pool
// is pre-warmed outside the timer so the pooled figure is the
// steady-state sweep cost; BENCH_6.json records the ratio, which must
// stay ≥ 2x (the acceptance criterion for the streaming-engine
// tentpole).
func BenchmarkWorldPoolSweep(b *testing.B) {
	const n = 16
	devices := scenario.Population(1, n, scenario.DefaultMix())
	fac := testbed.Factory{Spec: testbed.ScaleTopology(testbed.DefaultOptions(), n)}
	sized := func(int) (*testbed.Testbed, error) { return fac.Build() }
	cell := func(pool *scenario.WorldPool) error {
		rep, err := scenario.RunShardedSized(sized, devices, scenario.ShardOptions{
			Shards: 16, Workers: 1, Seed: 1, Pool: pool,
			Run: scenario.RunOptions{DiscardDevices: true},
		})
		if err != nil {
			return err
		}
		if rep.Joined != n {
			return fmt.Errorf("population lost: joined=%d", rep.Joined)
		}
		return nil
	}
	b.Run("fresh", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := cell(nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("pooled", func(b *testing.B) {
		b.ReportAllocs()
		pool := scenario.NewWorldPool()
		defer pool.Close()
		if err := cell(pool); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := cell(pool); err != nil {
				b.Fatal(err)
			}
		}
	})
}
